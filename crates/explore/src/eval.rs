//! Scoring one [`DesignPoint`] as (energy, area, cycles) objectives.
//!
//! The evaluator runs the workload **once** at construction and replays the
//! captured trace, fetch stream, and generated scheduling application
//! against each candidate configuration. Scoring is a pure function of the
//! point, so results are identical at any worker count; per-axis
//! memoization only avoids recomputing a sub-flow two points share — the
//! cached value is the value every thread would have computed.
//!
//! Memoization is **sharded per worker**: each search worker carries its
//! own [`MemoShard`] and evaluates through
//! [`Evaluator::evaluate_in`], so the hot path never takes a lock. A
//! shared base shard (one mutex, consulted briefly on shard misses,
//! extended by [`Evaluator::absorb`] between batches) carries hits across
//! batches and generations. Because every cached value is a pure function
//! of its key, the merge order of shards is unobservable — results stay
//! byte-identical at any worker count.
//!
//! The modeled platform is a scratchpad-plus-cached-heap embedded SoC: the
//! partitioned/clustered scratchpad (1B.1) and the compressed write-back
//! D-cache (1B.2) are scored over the same data trace as two design
//! regions whose energies add, the encoded instruction bus (1B.3) over the
//! fetch stream, and the two-level scheduler (1B.4) over a DSP pipeline
//! generated from the same seed. Area is the sum of the banked scratchpad
//! (the promoted A5 accounting, relocation table included), the D-cache
//! macro, codec and encoder gates, and the L0/L1 macros.

use std::collections::HashMap;
use std::sync::Mutex;

use lpmem_buscode::addrbus::gray_encode;
use lpmem_buscode::{transitions, BusInvert, RegionEncoder};
use lpmem_cmp::{simulate_cmp, CmpReport, CmpSpec, LlcCodec};
use lpmem_compress::{DiffCodec, FpcCodec, LineCodec, RawCodec, ZeroRunCodec};
use lpmem_core::flows::cmp::cmp_core_runs;
use lpmem_core::flows::compression::{run_compression_trace, CompressionConfig};
use lpmem_core::flows::partitioning::{run_partitioning, PartitioningConfig};
use lpmem_core::flows::scheduling::{dsp_pipeline_app, run_scheduling};
use lpmem_core::flows::spec::{data_memory_exposure, TechNode, VariantSpec};
use lpmem_core::flows::{run_campaign, FaultSpec, ReliabilityReport};
use lpmem_core::workloads::kernel_trace_and_image;
use lpmem_core::FlowError;
use lpmem_energy::{AreaReport, BusModel, SramModel, Technology};
use lpmem_isa::Kernel;
use lpmem_mem::FlatMemory;
use lpmem_sched::{AppSpec, SchedPlatform};
use lpmem_trace::{AccessKind, Trace};

use crate::point::{BusChoice, CacheGeom, CodecChoice, DesignPoint};

/// Cycles charged per off-chip beat (on-chip accesses cost one cycle).
const OFFCHIP_BEAT_CYCLES: u64 = 10;

/// Gate area as a multiple of the node's SRAM cell area — random logic is
/// larger than a 6T bit cell; 2.5 cells/gate is a standard-cell-order
/// approximation consistent with the workspace's ratio-only area model.
const GATE_CELLS: f64 = 2.5;

/// The workload a search scores every candidate against.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Workload {
    /// Kernel generating the trace and fetch stream.
    pub kernel: Kernel,
    /// Kernel problem scale.
    pub scale: u32,
    /// Seed for the kernel's data and the scheduling application.
    pub seed: u64,
    /// Technology node everything is priced at.
    pub tech: TechNode,
    /// Pipeline stages of the generated scheduling application.
    pub stages: usize,
    /// Loop iterations of the generated scheduling application.
    pub iterations: u64,
}

impl Default for Workload {
    /// The DSE headline workload: FIR at scale 48 on the 0.18 µm node with
    /// a 4-stage, 32-frame pipeline — the same corner the sweep's spec
    /// tests exercise.
    fn default() -> Self {
        Workload {
            kernel: Kernel::Fir,
            scale: 48,
            seed: 2003,
            tech: TechNode::T180,
            stages: 4,
            iterations: 32,
        }
    }
}

/// The minimized objectives of one evaluated point.
///
/// `silent` is the reliability objective: silent data corruptions of the
/// fault campaign, zero whenever the evaluator's fault axis is off — so a
/// fault-free search has exactly the classic three-axis dominance.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Objectives {
    /// Total platform energy in pJ.
    pub energy_pj: f64,
    /// Total silicon area in mm².
    pub area_mm2: f64,
    /// Performance proxy: memory cycles (on-chip accesses plus weighted
    /// off-chip beats).
    pub cycles: u64,
    /// Silent data corruptions of the fault campaign (0 when faults off).
    pub silent: u64,
}

impl Objectives {
    /// Pareto dominance: no objective worse, at least one strictly better.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.energy_pj <= other.energy_pj
            && self.area_mm2 <= other.area_mm2
            && self.cycles <= other.cycles
            && self.silent <= other.silent;
        let better = self.energy_pj < other.energy_pj
            || self.area_mm2 < other.area_mm2
            || self.cycles < other.cycles
            || self.silent < other.silent;
        no_worse && better
    }
}

/// One scored design point.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Evaluation {
    /// The configuration that was scored.
    pub point: DesignPoint,
    /// Its objective vector.
    pub objectives: Objectives,
    /// Named area breakdown behind `objectives.area_mm2`.
    pub area: AreaReport,
    /// Full campaign accounting when the evaluator's fault axis is on.
    pub reliability: Option<ReliabilityReport>,
    /// Shared-LLC outcome counters when the point carries a CMP scenario.
    pub cmp: Option<CmpReport>,
}

#[derive(Clone)]
struct PartEval {
    energy_pj: f64,
    area: AreaReport,
}

#[derive(Clone, Copy)]
struct CompEval {
    energy_pj: f64,
    beats: u64,
}

#[derive(Clone, Copy)]
struct FaultEval {
    report: ReliabilityReport,
    accesses: u64,
    reads: u64,
    data_bytes: u64,
}

#[derive(Clone)]
struct CmpEval {
    energy_pj: f64,
    fetches: u64,
    cycles: u64,
    area: AreaReport,
    report: CmpReport,
    reliability: Option<ReliabilityReport>,
}

/// One worker's private memo table of sub-flow results.
///
/// Every cached value is a pure function of its key (the evaluator's
/// workload and fault axis are fixed), so shards computed by different
/// workers always agree on shared keys and can be merged in any order.
#[derive(Default)]
pub struct MemoShard {
    part: HashMap<(usize, u64), PartEval>,
    comp: HashMap<(CacheGeom, CodecChoice), CompEval>,
    bus: HashMap<String, f64>,
    sched: HashMap<u64, f64>,
    fault: HashMap<(usize, u64), FaultEval>,
    cmp: HashMap<(CmpSpec, CacheGeom), CmpEval>,
}

/// Scores design points against one fixed workload.
pub struct Evaluator {
    workload: Workload,
    fault: FaultSpec,
    tech: Technology,
    trace: Trace,
    image: FlatMemory,
    fetch_stream: Vec<(u64, u32)>,
    data_accesses: u64,
    app: AppSpec,
    base: Mutex<MemoShard>,
}

impl Evaluator {
    /// Runs the workload once and captures everything scoring needs. The
    /// fault axis is off: `silent` is 0 for every point and scoring is
    /// exactly the classic three-objective evaluation.
    ///
    /// # Errors
    ///
    /// Propagates kernel execution and application-builder errors, and
    /// rejects workloads whose trace lacks fetches or data accesses.
    pub fn new(workload: Workload) -> Result<Evaluator, FlowError> {
        Evaluator::with_faults(workload, FaultSpec::off())
    }

    /// Like [`Evaluator::new`] but scoring every point under a fault
    /// campaign: each candidate's banked data memory is exposed to the
    /// spec's accelerated upset rate, the protection's energy/area/latency
    /// overheads are charged, and the campaign's silent corruptions become
    /// the fourth objective.
    ///
    /// # Errors
    ///
    /// Same as [`Evaluator::new`].
    pub fn with_faults(workload: Workload, fault: FaultSpec) -> Result<Evaluator, FlowError> {
        let (trace, image) =
            kernel_trace_and_image(workload.kernel, workload.scale, workload.seed)?;
        let fetch_stream: Vec<(u64, u32)> = trace
            .iter()
            .filter(|e| e.kind == AccessKind::InstrFetch)
            .map(|e| (e.addr, e.value))
            .collect();
        if fetch_stream.is_empty() {
            return Err(FlowError::EmptyInput("trace has no instruction fetches"));
        }
        let data_accesses = trace.iter().filter(|e| e.kind.is_data()).count() as u64;
        if data_accesses == 0 {
            return Err(FlowError::EmptyInput("trace has no data accesses"));
        }
        let app = dsp_pipeline_app(workload.stages, workload.iterations, workload.seed)?;
        let tech = workload.tech.technology();
        Ok(Evaluator {
            workload,
            fault,
            tech,
            trace,
            image,
            fetch_stream,
            data_accesses,
            app,
            base: Mutex::new(MemoShard::default()),
        })
    }

    /// The workload this evaluator scores against.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The fault spec every point is scored under ([`FaultSpec::off`]
    /// unless built by [`Evaluator::with_faults`]).
    pub fn fault(&self) -> &FaultSpec {
        &self.fault
    }

    /// Scores one point through a throwaway shard. Pure in the point: the
    /// same point always maps to the same objectives, whichever thread
    /// asks first. Search loops hold a per-worker shard and call
    /// [`Evaluator::evaluate_in`] instead.
    ///
    /// # Errors
    ///
    /// Propagates flow errors (an invalid cache geometry, a scheduler
    /// failure). Points from a validated [`DesignSpace`]
    /// [`crate::point::DesignSpace`] never fail.
    pub fn evaluate(&self, point: &DesignPoint) -> Result<Evaluation, FlowError> {
        let mut shard = MemoShard::default();
        let out = self.evaluate_in(&mut shard, point);
        self.absorb(shard);
        out
    }

    /// Scores one point, memoizing sub-flow results into the caller's
    /// shard (lock-free on shard hits; the shared base shard is consulted
    /// briefly on misses).
    ///
    /// # Errors
    ///
    /// Same as [`Evaluator::evaluate`].
    pub fn evaluate_in(
        &self,
        shard: &mut MemoShard,
        point: &DesignPoint,
    ) -> Result<Evaluation, FlowError> {
        let part = self.partitioning(shard, point.banks, point.block)?;
        let ibus_pj = self.ibus(shard, point.bus);
        let sched_pj = self.scheduling(shard, point.l0)?;

        let sram = SramModel::new(&self.tech);
        let mut energy_pj;
        let mut area = part.area.clone();
        area.add("sched.l0", sram.area_mm2(point.l0));
        area.add("sched.l1", sram.area_mm2(16 << 10));

        let mut cycles;
        let mut reliability = None;
        let mut silent = 0;
        let mut cmp_report = None;
        match &point.cmp {
            None => {
                let comp = self.compression(shard, point.cache, point.codec)?;
                // Summed in the pre-CMP order so zero-CMP points stay
                // byte-identical to the pinned pre-CMP frontiers.
                energy_pj = part.energy_pj + comp.energy_pj + ibus_pj + sched_pj;
                area.add("dcache.macro", sram.area_mm2(point.cache.size));
                area.add("dcache.codec", self.gate_area_mm2(codec_gates(point.codec)));
                area.add("ibus.encoder", self.gate_area_mm2(bus_gates(point.bus)));
                cycles = self.fetch_stream.len() as u64
                    + self.data_accesses
                    + OFFCHIP_BEAT_CYCLES * comp.beats;
            }
            Some(spec) => {
                // The chip goes multi-core: every core gets a private
                // D-cache of the point's geometry and a private encoded
                // instruction bus, and the data side drains through the
                // scenario's shared LLC instead of the single-core
                // write-back path — so the `codec` axis (write-back
                // compression hardware) is idle here and charges nothing;
                // in-LLC compression is the scenario's `codec` knob.
                let cmp = self.cmp(shard, spec, point.cache)?;
                let cores = f64::from(spec.cores);
                energy_pj = part.energy_pj + sched_pj + (ibus_pj * cores + cmp.energy_pj);
                area.add("dcache.macro", sram.area_mm2(point.cache.size) * cores);
                area.add(
                    "ibus.encoder",
                    self.gate_area_mm2(bus_gates(point.bus)) * cores,
                );
                area.add(
                    "llc.codec",
                    self.gate_area_mm2(llc_codec_gates(spec.codec) * u64::from(spec.banks)),
                );
                area.merge(&cmp.area);
                cycles = cmp.fetches + cmp.cycles;
                silent = cmp.reliability.as_ref().map_or(0, |r| r.silent);
                reliability = cmp.reliability;
                cmp_report = Some(cmp.report.clone());
            }
        }

        if self.fault.enabled() {
            let fault = self.faults(shard, point.banks, point.block)?;
            let protection = self.fault.protection;
            energy_pj += protection
                .access_overhead(&self.tech, fault.accesses)
                .as_pj();
            area.merge(&protection.area_overhead(&self.tech, fault.data_bytes));
            cycles += protection.extra_read_cycles() * fault.reads;
            silent += fault.report.silent;
            reliability = Some(match reliability {
                Some(mut acc) => {
                    acc.merge(&fault.report);
                    acc
                }
                None => fault.report,
            });
        }

        Ok(Evaluation {
            point: point.clone(),
            objectives: Objectives {
                energy_pj,
                area_mm2: area.total_mm2(),
                cycles,
                silent,
            },
            area,
            reliability,
            cmp: cmp_report,
        })
    }

    /// Folds a worker's shard into the shared base shard so later batches
    /// start warm. Values are pure in their keys, so overwrites on shared
    /// keys are no-ops and merge order is unobservable.
    pub fn absorb(&self, shard: MemoShard) {
        let mut base = lock(&self.base);
        base.part.extend(shard.part);
        base.comp.extend(shard.comp);
        base.bus.extend(shard.bus);
        base.sched.extend(shard.sched);
        base.fault.extend(shard.fault);
        base.cmp.extend(shard.cmp);
    }

    fn partitioning(
        &self,
        shard: &mut MemoShard,
        banks: usize,
        block: u64,
    ) -> Result<PartEval, FlowError> {
        let key = (banks, block);
        if let Some(hit) = shard.part.get(&key) {
            return Ok(hit.clone());
        }
        if let Some(hit) = lock(&self.base).part.get(&key).cloned() {
            shard.part.insert(key, hit.clone());
            return Ok(hit);
        }
        let cfg = PartitioningConfig {
            block_size: block,
            max_banks: banks,
            ..Default::default()
        };
        let out = run_partitioning("dse", &self.trace, &cfg, &self.tech)?;
        let eval = PartEval {
            energy_pj: out.clustered.as_pj(),
            area: out.area,
        };
        shard.part.insert(key, eval.clone());
        Ok(eval)
    }

    fn compression(
        &self,
        shard: &mut MemoShard,
        cache: CacheGeom,
        codec: CodecChoice,
    ) -> Result<CompEval, FlowError> {
        let key = (cache, codec);
        if let Some(&hit) = shard.comp.get(&key) {
            return Ok(hit);
        }
        if let Some(hit) = lock(&self.base).comp.get(&key).copied() {
            shard.comp.insert(key, hit);
            return Ok(hit);
        }
        let cfg = CompressionConfig {
            cache: cache.config()?,
            threshold: 0.75,
            flush_at_end: true,
        };
        let codec_impl: Box<dyn LineCodec> = match codec {
            CodecChoice::Off => Box::new(RawCodec::new()),
            CodecChoice::Differential => Box::new(DiffCodec::new()),
            CodecChoice::ZeroRun => Box::new(ZeroRunCodec::new()),
            CodecChoice::Fpc => Box::new(FpcCodec::new()),
        };
        let out = run_compression_trace(
            "dse",
            "dse",
            &self.trace,
            self.image.clone(),
            codec_impl.as_ref(),
            &cfg,
            &self.tech,
        )?;
        // With the codec off there is no compression hardware: the design
        // pays raw traffic and no codec energy (the flow's baseline side).
        let eval = match codec {
            CodecChoice::Off => CompEval {
                energy_pj: out.baseline.total().as_pj(),
                beats: out.raw_beats,
            },
            _ => CompEval {
                energy_pj: out.compressed.total().as_pj(),
                beats: out.actual_beats,
            },
        };
        shard.comp.insert(key, eval);
        Ok(eval)
    }

    fn ibus(&self, shard: &mut MemoShard, bus: BusChoice) -> f64 {
        let key = bus.name();
        if let Some(&hit) = shard.bus.get(&key) {
            return hit;
        }
        if let Some(hit) = lock(&self.base).bus.get(&key).copied() {
            shard.bus.insert(key, hit);
            return hit;
        }
        let model = BusModel::onchip(&self.tech, 32);
        let raw = transitions(self.fetch_stream.iter().map(|&(_, w)| w));
        let encoded = match bus {
            BusChoice::Raw => raw,
            BusChoice::Gray => transitions(self.fetch_stream.iter().map(|&(_, w)| gray_encode(w))),
            BusChoice::BusInvert => BusInvert::transitions(&self.fetch_stream),
            BusChoice::Xor(regions) => {
                RegionEncoder::train(&self.fetch_stream, regions)
                    .evaluate(&self.fetch_stream)
                    .encoded_transitions
            }
        };
        let mut pj = model.energy_of(encoded).as_pj();
        if bus != BusChoice::Raw {
            // Encoder + decoder gate switching, as priced by the system
            // flow: ~0.004 of a line transition per side.
            let gate_pj = 0.004 * model.transition_energy().as_pj();
            pj += gate_pj * (raw + encoded) as f64;
        }
        shard.bus.insert(key, pj);
        pj
    }

    fn scheduling(&self, shard: &mut MemoShard, l0: u64) -> Result<f64, FlowError> {
        if let Some(&hit) = shard.sched.get(&l0) {
            return Ok(hit);
        }
        if let Some(hit) = lock(&self.base).sched.get(&l0).copied() {
            shard.sched.insert(l0, hit);
            return Ok(hit);
        }
        let platform = SchedPlatform::new(&self.tech, l0, 16 << 10);
        let out = run_scheduling("dse", &self.app, &platform)?;
        let pj = out.greedy.as_pj();
        shard.sched.insert(l0, pj);
        Ok(pj)
    }

    /// Campaign outcome for one banked-memory shape. The exposure and the
    /// campaign depend only on `(banks, block)` — the protection is fixed
    /// per evaluator — so two points sharing a shape share the draw.
    fn faults(
        &self,
        shard: &mut MemoShard,
        banks: usize,
        block: u64,
    ) -> Result<FaultEval, FlowError> {
        let key = (banks, block);
        if let Some(&hit) = shard.fault.get(&key) {
            return Ok(hit);
        }
        if let Some(hit) = lock(&self.base).fault.get(&key).copied() {
            shard.fault.insert(key, hit);
            return Ok(hit);
        }
        let shape = VariantSpec {
            max_banks: banks,
            block_size: block,
            ..VariantSpec::default()
        };
        let exposure = data_memory_exposure(&self.trace, &shape, &self.tech)?;
        let reads: u64 = exposure.banks.iter().map(|b| b.reads).sum();
        let words: u64 = exposure.banks.iter().map(|b| b.words).sum();
        let eval = FaultEval {
            report: run_campaign(&self.fault, &self.tech, &exposure, self.workload.seed),
            accesses: exposure.accesses(),
            reads,
            data_bytes: words * 4,
        };
        shard.fault.insert(key, eval);
        Ok(eval)
    }

    /// Shared-LLC outcome of one CMP scenario over the workload's
    /// multi-programmed core set. Depends only on `(spec, cache)` — the
    /// workload, fault axis, and seed are fixed per evaluator.
    fn cmp(
        &self,
        shard: &mut MemoShard,
        spec: &CmpSpec,
        cache: CacheGeom,
    ) -> Result<CmpEval, FlowError> {
        let key = (spec.clone(), cache);
        if let Some(hit) = shard.cmp.get(&key) {
            return Ok(hit.clone());
        }
        if let Some(hit) = lock(&self.base).cmp.get(&key).cloned() {
            shard.cmp.insert(key, hit.clone());
            return Ok(hit);
        }
        let runs = cmp_core_runs(
            self.workload.kernel,
            self.workload.scale,
            self.workload.seed,
            spec.cores,
        )?;
        let fetches: u64 = runs
            .iter()
            .map(|r| {
                r.trace
                    .iter()
                    .filter(|e| e.kind == AccessKind::InstrFetch)
                    .count() as u64
            })
            .sum();
        let out = simulate_cmp(
            spec,
            cache.config()?,
            &self.tech,
            runs,
            &self.fault,
            self.workload.seed,
        );
        let eval = CmpEval {
            energy_pj: out.optimized.total().as_pj(),
            fetches,
            cycles: out.report.cycles,
            area: out.area,
            report: out.report,
            reliability: out.reliability,
        };
        shard.cmp.insert(key, eval.clone());
        Ok(eval)
    }

    fn gate_area_mm2(&self, gates: u64) -> f64 {
        gates as f64 * GATE_CELLS * self.tech.sram_cell_um2 * 1e-6
    }
}

/// First-order gate counts of the codec datapaths (zero when off).
fn codec_gates(codec: CodecChoice) -> u64 {
    match codec {
        CodecChoice::Off => 0,
        CodecChoice::ZeroRun => 900,
        CodecChoice::Differential => 1200,
        CodecChoice::Fpc => 2000,
    }
}

/// First-order gate counts of one LLC bank's line codec (zero when off).
/// Same datapaths as the write-back codecs, instantiated per bank.
fn llc_codec_gates(codec: LlcCodec) -> u64 {
    match codec {
        LlcCodec::Off => 0,
        LlcCodec::Zrun => 900,
        LlcCodec::Diff => 1200,
        LlcCodec::Fpc => 2000,
    }
}

/// First-order gate counts of the bus encoder + decoder pair.
fn bus_gates(bus: BusChoice) -> u64 {
    match bus {
        BusChoice::Raw => 0,
        BusChoice::Gray => 64,
        BusChoice::BusInvert => 96,
        BusChoice::Xor(regions) => 96 * regions as u64,
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::DesignSpace;

    fn tiny_workload() -> Workload {
        Workload {
            scale: 16,
            iterations: 8,
            ..Workload::default()
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let eval = Evaluator::new(tiny_workload()).unwrap();
        let p = DesignSpace::small().point_at(5);
        let a = eval.evaluate(&p).unwrap();
        let b = eval.evaluate(&p).unwrap();
        assert_eq!(a, b);
        // A fresh evaluator (cold caches) agrees too.
        let eval2 = Evaluator::new(tiny_workload()).unwrap();
        assert_eq!(eval2.evaluate(&p).unwrap(), a);
    }

    #[test]
    fn objectives_respond_to_the_axes() {
        let eval = Evaluator::new(tiny_workload()).unwrap();
        let base = DesignPoint::from_variant(&lpmem_core::flows::spec::VariantSpec::default());
        let a = eval.evaluate(&base).unwrap();
        // A larger bank *budget* never costs energy (the partitioner
        // optimizes over a superset of designs).
        let narrow = DesignPoint {
            banks: 2,
            ..base.clone()
        };
        let wide = DesignPoint {
            banks: 16,
            ..base.clone()
        };
        let e_narrow = eval.evaluate(&narrow).unwrap();
        let e_wide = eval.evaluate(&wide).unwrap();
        assert!(e_wide.objectives.energy_pj <= e_narrow.objectives.energy_pj);
        // A bigger D-cache macro always costs area.
        let big_cache = DesignPoint {
            cache: CacheGeom {
                size: 8 << 10,
                line: 64,
                ways: 2,
            },
            ..base.clone()
        };
        let b = eval.evaluate(&big_cache).unwrap();
        assert!(b.objectives.area_mm2 > a.objectives.area_mm2);
        // No codec: no codec gates, at least as many off-chip beats.
        let off = DesignPoint {
            codec: CodecChoice::Off,
            ..base.clone()
        };
        let c = eval.evaluate(&off).unwrap();
        assert_eq!(c.area.component("dcache.codec"), 0.0);
        assert!(c.objectives.cycles >= a.objectives.cycles);
        // Raw bus: no encoder area, more bus energy than the trained XOR.
        let raw = DesignPoint {
            bus: BusChoice::Raw,
            ..base.clone()
        };
        let d = eval.evaluate(&raw).unwrap();
        assert_eq!(d.area.component("ibus.encoder"), 0.0);
        assert!(d.objectives.energy_pj > a.objectives.energy_pj);
    }

    #[test]
    fn dominance_is_strict_and_irreflexive() {
        let a = Objectives {
            energy_pj: 1.0,
            area_mm2: 1.0,
            cycles: 10,
            silent: 0,
        };
        let b = Objectives {
            energy_pj: 2.0,
            area_mm2: 1.0,
            cycles: 10,
            silent: 0,
        };
        let c = Objectives {
            energy_pj: 0.5,
            area_mm2: 2.0,
            cycles: 10,
            silent: 0,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "equal vectors do not dominate");
        assert!(
            !a.dominates(&c) && !c.dominates(&a),
            "trade-offs are incomparable"
        );
        // The reliability axis participates: fewer silent corruptions at
        // equal cost dominates; a cheaper-but-corrupting point trades off.
        let clean = Objectives { silent: 0, ..a };
        let corrupting = Objectives { silent: 4, ..a };
        assert!(clean.dominates(&corrupting));
        assert!(!corrupting.dominates(&clean));
        let cheap_corrupting = Objectives {
            energy_pj: 0.5,
            silent: 4,
            ..a
        };
        assert!(!clean.dominates(&cheap_corrupting) && !cheap_corrupting.dominates(&clean));
    }

    #[test]
    fn fault_axis_scores_protection_against_silent_corruption() {
        use lpmem_core::flows::Protection;
        let p = DesignSpace::small().point_at(5);
        let plain = Evaluator::new(tiny_workload())
            .unwrap()
            .evaluate(&p)
            .unwrap();
        assert_eq!(plain.objectives.silent, 0);
        assert_eq!(plain.reliability, None);

        // The tiny trace exposes few word-ticks, so push the beam rate
        // well past the campaign default to get a statistically real
        // upset population.
        let spec = |protection| FaultSpec {
            rate_scale: FaultSpec::DEFAULT_ACCEL.saturating_mul(100_000),
            protection,
        };
        let none = Evaluator::with_faults(tiny_workload(), spec(Protection::None))
            .unwrap()
            .evaluate(&p)
            .unwrap();
        let secded = Evaluator::with_faults(tiny_workload(), spec(Protection::Secded))
            .unwrap()
            .evaluate(&p)
            .unwrap();
        // Unprotected: every consumed upset is silent; no overheads.
        let none_rel = none.reliability.expect("campaign ran");
        assert!(none_rel.injected > 0, "accelerated rate must inject");
        assert_eq!(none.objectives.silent, none_rel.silent);
        assert_eq!(none.objectives.energy_pj, plain.objectives.energy_pj);
        assert_eq!(none.objectives.cycles, plain.objectives.cycles);
        // SECDED: strictly fewer silent corruptions, bought with energy,
        // check-bit area, and read latency.
        assert!(secded.objectives.silent < none.objectives.silent);
        assert!(secded.objectives.energy_pj > none.objectives.energy_pj);
        assert!(secded.objectives.area_mm2 > none.objectives.area_mm2);
        assert!(secded.objectives.cycles > none.objectives.cycles);
        assert!(secded.area.component("prot.checkbits") > 0.0);
    }

    #[test]
    fn area_breakdown_totals_the_objective() {
        let eval = Evaluator::new(tiny_workload()).unwrap();
        let p = DesignSpace::small().point_at(17);
        let e = eval.evaluate(&p).unwrap();
        assert!((e.area.total_mm2() - e.objectives.area_mm2).abs() < 1e-12);
        assert!(e.area.component("bank.cells") > 0.0);
        assert!(e.area.component("sched.l1") > 0.0);
    }

    #[test]
    fn cmp_points_price_the_shared_llc() {
        let eval = Evaluator::new(tiny_workload()).unwrap();
        let solo = DesignSpace::small().point_at(5);
        let chip = DesignPoint {
            cmp: Some(CmpSpec::quad()),
            ..solo.clone()
        };
        chip.validate().unwrap();
        let a = eval.evaluate(&solo).unwrap();
        let b = eval.evaluate(&chip).unwrap();
        assert_eq!(a.cmp, None);
        let report = b.cmp.as_ref().expect("CMP points carry a report");
        assert_eq!(report.cores, 4);
        assert!(report.llc_lookups > 0);
        // Four cores' silicon and traffic: strictly more area and cycles
        // than the single-core point, with the LLC arrays itemized.
        assert!(b.objectives.area_mm2 > a.objectives.area_mm2);
        assert!(b.objectives.cycles > a.objectives.cycles);
        assert!(b.area.component("llc.cells") > 0.0);
        assert!(b.area.component("llc.codec") > 0.0);
        // The write-back codec axis is idle behind a shared LLC.
        assert_eq!(b.area.component("dcache.codec"), 0.0);
        assert!((b.area.total_mm2() - b.objectives.area_mm2).abs() < 1e-12);
        // Determinism across fresh evaluators (cold shards).
        let again = Evaluator::new(tiny_workload()).unwrap();
        assert_eq!(again.evaluate(&chip).unwrap(), b);
    }

    #[test]
    fn cmp_points_join_the_fault_campaign() {
        use lpmem_core::flows::Protection;
        let fault = FaultSpec {
            rate_scale: FaultSpec::DEFAULT_ACCEL.saturating_mul(100_000),
            protection: Protection::Secded,
        };
        let eval = Evaluator::with_faults(tiny_workload(), fault).unwrap();
        let solo = DesignSpace::small().point_at(5);
        let chip = DesignPoint {
            cmp: Some(CmpSpec::quad()),
            ..solo
        };
        let e = eval.evaluate(&chip).unwrap();
        // The merged campaign covers both the scratchpad and the LLC
        // arrays: at least as many injections as the scratchpad alone.
        let merged = e.reliability.expect("campaign ran");
        let scratch = eval.evaluate(&DesignSpace::small().point_at(5)).unwrap();
        let scratch_rel = scratch.reliability.expect("campaign ran");
        assert!(merged.injected >= scratch_rel.injected);
        assert!(e.area.component("prot.checkbits") > scratch.area.component("prot.checkbits"));
    }

    #[test]
    fn shards_agree_with_fresh_evaluation() {
        let eval = Evaluator::new(tiny_workload()).unwrap();
        let space = DesignSpace::small();
        let mut shard = MemoShard::default();
        let through_shard: Vec<Evaluation> = (0..8)
            .map(|i| eval.evaluate_in(&mut shard, &space.point_at(i)).unwrap())
            .collect();
        eval.absorb(shard);
        // A second pass (warm base, cold shard) and a fresh evaluator
        // (everything cold) both reproduce the same evaluations.
        let mut cold = MemoShard::default();
        let fresh = Evaluator::new(tiny_workload()).unwrap();
        for (i, expected) in through_shard.iter().enumerate() {
            let p = space.point_at(i);
            assert_eq!(&eval.evaluate_in(&mut cold, &p).unwrap(), expected);
            assert_eq!(&fresh.evaluate(&p).unwrap(), expected);
        }
    }
}
