//! The CMP scenario specification: core count, LLC geometry, per-line
//! codec, heterogeneous technology split, and chip power budget.
//!
//! [`CmpSpec`] follows the `FaultSpec` template exactly: an all-off
//! default whose runs must reproduce the single-core tree byte-for-byte,
//! a compact report/CLI label, and a [`parse`](CmpSpec::parse) that
//! round-trips every label.

use lpmem_compress::{DiffCodec, FpcCodec, LineCodec, ZeroRunCodec};
use lpmem_energy::{TechNode, Technology};
use lpmem_partition::Partition;

/// Domain tag terminating every CMP seed-derivation path (per-core kernel
/// seeds, LLC fault domains).
pub const TAG_CMP: u64 = 0xC390;

/// Default round-robin interleave quantum: data events one core retires
/// before the arbiter hands the memory system to the next core.
pub const DEFAULT_QUANTUM: u32 = 32;

/// The LLC line codec choice — `lpmem-compress` codecs applied at the
/// shared-cache boundary instead of the private write-back path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LlcCodec {
    /// Uncompressed LLC: every line occupies all four segments.
    Off,
    /// Differential (word deltas, zigzag, variable-width packing).
    Diff,
    /// Zero-run elimination.
    Zrun,
    /// Frequent-pattern compression.
    Fpc,
}

impl LlcCodec {
    /// Every codec choice, in grid order.
    pub const ALL: [LlcCodec; 4] = [LlcCodec::Off, LlcCodec::Diff, LlcCodec::Zrun, LlcCodec::Fpc];

    /// Report/CLI key (matches the explorer's codec axis names).
    pub fn name(self) -> &'static str {
        match self {
            LlcCodec::Off => "off",
            LlcCodec::Diff => "diff",
            LlcCodec::Zrun => "zrun",
            LlcCodec::Fpc => "fpc",
        }
    }

    /// Parses a report/CLI key (case-insensitive).
    pub fn parse(s: &str) -> Option<LlcCodec> {
        LlcCodec::ALL
            .into_iter()
            .find(|c| c.name() == s.trim().to_ascii_lowercase())
    }

    /// The line codec implementation, or `None` when compression is off.
    pub fn codec(self) -> Option<Box<dyn LineCodec>> {
        match self {
            LlcCodec::Off => None,
            LlcCodec::Diff => Some(Box::new(DiffCodec::new())),
            LlcCodec::Zrun => Some(Box::new(ZeroRunCodec::new())),
            LlcCodec::Fpc => Some(Box::new(FpcCodec::new())),
        }
    }
}

/// One chip-multiprocessor scenario: N cores behind private L1 D-caches
/// sharing a NUCA LLC whose bank partitions may sit on different
/// technology nodes under a chip power budget.
///
/// `cores == 0` is the disabled configuration ([`CmpSpec::off`]); a
/// disabled spec must leave every existing report byte-identical.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CmpSpec {
    /// Number of TinyRISC cores. `0` disables the CMP scenario entirely.
    pub cores: u32,
    /// Number of NUCA LLC banks. `0` or `1` with everything else at its
    /// default degenerates to the monolithic next level the single-core
    /// system flow already prices (see [`CmpSpec::passthrough`]).
    pub banks: u32,
    /// Capacity of one LLC bank in KiB.
    pub bank_kib: u32,
    /// Set associativity of each LLC bank (uncompressed ways; a
    /// compressed bank holds up to twice as many tags in the same
    /// segment budget).
    pub ways: u32,
    /// Per-line LLC compression codec.
    pub codec: LlcCodec,
    /// Technology node per bank partition, in bank order. Empty means
    /// homogeneous at the run's own technology axis; otherwise bank `b`
    /// belongs to partition `b·len/banks`.
    pub techs: Vec<TechNode>,
    /// Chip leakage power budget in µW. `0` means unbudgeted; otherwise
    /// the coldest banks are dark-silicon-gated (greedily, by heat then
    /// bank index) until the LLC's standby power fits the budget.
    pub budget_uw: u64,
    /// Round-robin interleave quantum in data events per core turn.
    pub quantum: u32,
}

impl CmpSpec {
    /// The disabled configuration: no cores, no LLC — the differential
    /// baseline that must reproduce every pre-CMP report byte-for-byte.
    pub fn off() -> CmpSpec {
        CmpSpec {
            cores: 0,
            banks: 0,
            bank_kib: 0,
            ways: 0,
            codec: LlcCodec::Off,
            techs: Vec::new(),
            budget_uw: 0,
            quantum: DEFAULT_QUANTUM,
        }
    }

    /// The headline scenario: four cores, eight compressed 32 KiB banks
    /// split across 0.18 µm and 90 nm partitions, under a 600 µW budget
    /// that forces the coldest leakage-dominated 90 nm banks dark.
    pub fn quad() -> CmpSpec {
        CmpSpec {
            cores: 4,
            banks: 8,
            bank_kib: 32,
            ways: 4,
            codec: LlcCodec::Zrun,
            techs: vec![TechNode::T180, TechNode::T90],
            budget_uw: 600,
            quantum: DEFAULT_QUANTUM,
        }
    }

    /// Whether this spec changes anything relative to the single-core
    /// flows.
    pub fn enabled(&self) -> bool {
        self.cores > 0
    }

    /// Whether the scenario's LLC degenerates to the monolithic next
    /// level the single-core system flow already prices: at most one
    /// bank, no compression, no explicit technology split, no power
    /// budget. Such runs take the per-core single-core code path, which
    /// makes the 1-core differential guarantee exact by construction.
    pub fn passthrough(&self) -> bool {
        self.enabled()
            && self.banks <= 1
            && self.codec == LlcCodec::Off
            && self.techs.is_empty()
            && self.budget_uw == 0
    }

    /// Validates an active scenario against the L1 line size its LLC
    /// inherits.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self, line_bytes: u32) -> Result<(), String> {
        if !self.enabled() || self.passthrough() {
            return Ok(());
        }
        if self.banks == 0 {
            return Err("an active LLC needs at least one bank".to_owned());
        }
        if self.ways == 0 {
            return Err("LLC banks need at least one way".to_owned());
        }
        if self.quantum == 0 {
            return Err("the interleave quantum must be positive".to_owned());
        }
        let bank_bytes = u64::from(self.bank_kib) * 1024;
        let set_bytes = u64::from(line_bytes) * u64::from(self.ways);
        if bank_bytes < set_bytes {
            return Err(format!(
                "bank capacity {bank_bytes} B below one set of {} {line_bytes}-byte lines",
                self.ways
            ));
        }
        if self.techs.len() > self.banks as usize {
            return Err(format!(
                "{} technology partitions over {} banks leaves empty partitions",
                self.techs.len(),
                self.banks
            ));
        }
        Ok(())
    }

    /// Number of technology partitions (1 for a homogeneous LLC).
    pub fn num_partitions(&self) -> usize {
        self.techs.len().max(1)
    }

    /// The bank-to-partition assignment as a [`Partition`] over the bank
    /// sequence — partition `p` covers banks
    /// `ceil(p·banks/P)..ceil((p+1)·banks/P)`, the same machinery the
    /// sleep-aware partitioner uses for its bank ranges.
    ///
    /// # Panics
    ///
    /// Panics when the spec is not a valid active scenario (zero banks,
    /// or more partitions than banks).
    pub fn tech_partition(&self) -> Partition {
        let banks = self.banks as usize;
        let parts = self.num_partitions();
        let cuts: Vec<usize> = (0..=parts).map(|p| (p * banks).div_ceil(parts)).collect();
        Partition::from_cuts(cuts)
    }

    /// The technology of partition `p`: the explicit split when one is
    /// given, otherwise the run's base technology.
    pub fn partition_technology(&self, p: usize, base: &Technology) -> Technology {
        match self.techs.get(p) {
            Some(node) => node.technology(),
            None => base.clone(),
        }
    }

    /// Report/CLI label: `off`, or
    /// `c<cores>b<banks>x<bank_kib>w<ways>[-codec][-t…+t…][-q<quantum>][-p<budget_uw>]`
    /// with defaulted suffixes omitted.
    pub fn label(&self) -> String {
        if !self.enabled() {
            return "off".to_owned();
        }
        let mut label = format!(
            "c{}b{}x{}w{}",
            self.cores, self.banks, self.bank_kib, self.ways
        );
        if self.codec != LlcCodec::Off {
            label.push('-');
            label.push_str(self.codec.name());
        }
        if !self.techs.is_empty() {
            let names: Vec<&str> = self.techs.iter().map(|t| t.name()).collect();
            label.push('-');
            label.push_str(&names.join("+"));
        }
        if self.quantum != DEFAULT_QUANTUM {
            label.push_str(&format!("-q{}", self.quantum));
        }
        if self.budget_uw > 0 {
            label.push_str(&format!("-p{}", self.budget_uw));
        }
        label
    }

    /// Parses a label produced by [`label`](CmpSpec::label)
    /// (case-insensitive; the suffix tokens may come in any order).
    pub fn parse(s: &str) -> Option<CmpSpec> {
        let s = s.trim().to_ascii_lowercase();
        if s == "off" {
            return Some(CmpSpec::off());
        }
        let mut tokens = s.split('-');
        let geom = tokens.next()?;
        let rest = geom.strip_prefix('c')?;
        let (cores, rest) = split_number(rest)?;
        let rest = rest.strip_prefix('b')?;
        let (banks, rest) = split_number(rest)?;
        let rest = rest.strip_prefix('x')?;
        let (bank_kib, rest) = split_number(rest)?;
        let rest = rest.strip_prefix('w')?;
        let (ways, rest) = split_number(rest)?;
        if !rest.is_empty() || cores == 0 {
            return None;
        }
        let mut spec = CmpSpec {
            cores,
            banks,
            bank_kib,
            ways,
            ..CmpSpec::off()
        };
        for token in tokens {
            if let Some(quantum) = token.strip_prefix('q').and_then(|v| v.parse().ok()) {
                spec.quantum = quantum;
            } else if let Some(budget) = token.strip_prefix('p').and_then(|v| v.parse().ok()) {
                spec.budget_uw = budget;
            } else if token.starts_with('t') {
                spec.techs = token
                    .split('+')
                    .map(TechNode::parse)
                    .collect::<Option<Vec<_>>>()?;
            } else if let Some(codec) = LlcCodec::parse(token) {
                spec.codec = codec;
            } else {
                return None;
            }
        }
        Some(spec)
    }
}

/// Splits a leading decimal number off `s`.
fn split_number(s: &str) -> Option<(u32, &str)> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    if end == 0 {
        return None;
    }
    Some((s[..end].parse().ok()?, &s[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_disabled_and_roundtrips() {
        let off = CmpSpec::off();
        assert!(!off.enabled());
        assert_eq!(off.label(), "off");
        assert_eq!(CmpSpec::parse("off"), Some(off));
    }

    #[test]
    fn quad_is_the_headline_scenario() {
        let quad = CmpSpec::quad();
        assert!(quad.enabled());
        assert!(!quad.passthrough());
        assert!(quad.cores >= 4);
        assert_ne!(quad.codec, LlcCodec::Off);
        assert!(quad.techs.len() >= 2);
        assert!(quad.budget_uw > 0);
        assert_eq!(quad.label(), "c4b8x32w4-zrun-t180+t90-p600");
        assert_eq!(quad.validate(64), Ok(()));
    }

    #[test]
    fn labels_roundtrip_through_parse() {
        let specs = [
            CmpSpec::off(),
            CmpSpec::quad(),
            CmpSpec {
                cores: 1,
                banks: 1,
                bank_kib: 16,
                ways: 2,
                ..CmpSpec::off()
            },
            CmpSpec {
                cores: 8,
                banks: 16,
                bank_kib: 64,
                ways: 4,
                codec: LlcCodec::Fpc,
                techs: vec![TechNode::T180, TechNode::T130, TechNode::T90],
                budget_uw: 12_000,
                quantum: 8,
            },
        ];
        for spec in specs {
            assert_eq!(
                CmpSpec::parse(&spec.label()),
                Some(spec.clone()),
                "{spec:?}"
            );
        }
        assert_eq!(CmpSpec::parse("b8x32w4"), None);
        assert_eq!(CmpSpec::parse("c0b8x32w4"), None);
        assert_eq!(CmpSpec::parse("c4b8x32w4-xyz"), None);
    }

    #[test]
    fn single_plain_bank_is_a_passthrough() {
        let spec = CmpSpec {
            cores: 1,
            banks: 1,
            bank_kib: 32,
            ways: 4,
            ..CmpSpec::off()
        };
        assert!(spec.passthrough());
        // Any LLC feature makes the scenario active.
        for active in [
            CmpSpec {
                banks: 2,
                ..spec.clone()
            },
            CmpSpec {
                codec: LlcCodec::Zrun,
                ..spec.clone()
            },
            CmpSpec {
                techs: vec![TechNode::T90],
                ..spec.clone()
            },
            CmpSpec {
                budget_uw: 100,
                ..spec.clone()
            },
        ] {
            assert!(!active.passthrough(), "{active:?}");
        }
    }

    #[test]
    fn validate_rejects_broken_geometry() {
        let quad = CmpSpec::quad();
        assert!(CmpSpec {
            ways: 0,
            ..quad.clone()
        }
        .validate(64)
        .is_err());
        assert!(CmpSpec {
            bank_kib: 0,
            ..quad.clone()
        }
        .validate(64)
        .is_err());
        assert!(CmpSpec {
            quantum: 0,
            ..quad.clone()
        }
        .validate(64)
        .is_err());
        assert!(CmpSpec {
            banks: 2,
            techs: vec![TechNode::T180, TechNode::T130, TechNode::T90],
            ..quad.clone()
        }
        .validate(64)
        .is_err());
        assert_eq!(CmpSpec::off().validate(64), Ok(()));
    }

    #[test]
    fn tech_partition_covers_all_banks_contiguously() {
        let quad = CmpSpec::quad(); // 8 banks over [t180, t90]
        let partition = quad.tech_partition();
        assert_eq!(partition.num_banks(), 2);
        assert_eq!(partition.cuts(), &[0, 4, 8]);
        // Three-way split over 8 banks: 3 + 3 + 2.
        let tri = CmpSpec {
            techs: vec![TechNode::T180, TechNode::T130, TechNode::T90],
            ..quad
        };
        assert_eq!(tri.tech_partition().cuts(), &[0, 3, 6, 8]);
        let homo = CmpSpec {
            techs: Vec::new(),
            ..tri
        };
        assert_eq!(homo.tech_partition().cuts(), &[0, 8]);
    }

    #[test]
    fn partition_technology_falls_back_to_base() {
        let base = Technology::tech130();
        let homo = CmpSpec {
            techs: Vec::new(),
            ..CmpSpec::quad()
        };
        assert_eq!(homo.partition_technology(0, &base), base);
        let quad = CmpSpec::quad();
        assert_eq!(
            quad.partition_technology(1, &base),
            TechNode::T90.technology()
        );
    }
}
