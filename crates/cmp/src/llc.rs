//! The shared NUCA last-level cache: tag/segment bookkeeping for
//! compressed lines across distributed banks.
//!
//! The model is tag-only (data lives in the cores' backing images); what
//! it tracks exactly is *placement*: which line sits in which bank, how
//! many quarter-line segments its compressed form occupies, and which
//! dirty lines each insertion evicts. Compression follows the
//! decoupled-variable-segment style of the compressed-LLC literature: a
//! line occupies 1–4 segments of `line_bytes/4`, a compressed bank holds
//! up to `2×ways` tags per set against the same `4×ways`-segment data
//! budget, and replacement is LRU by a global monotonic stamp — the
//! deterministic logical clock of the interleaved simulation.

use crate::spec::LlcCodec;

/// Segments per uncompressed line (quarter-line granularity).
pub const SEGMENTS_PER_LINE: u32 = 4;

/// Geometry of the shared LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LlcConfig {
    /// Number of NUCA banks.
    pub banks: u32,
    /// Capacity of one bank in bytes.
    pub bank_bytes: u64,
    /// Line size in bytes (inherited from the private L1s).
    pub line_bytes: u32,
    /// Uncompressed ways per set.
    pub ways: u32,
    /// Whether compressed placement is on (doubles the tag slots).
    pub compressed: bool,
}

impl LlcConfig {
    /// Sets per bank at the uncompressed geometry.
    pub fn sets_per_bank(&self) -> u64 {
        self.bank_bytes / (u64::from(self.line_bytes) * u64::from(self.ways))
    }

    /// Bytes per segment (quarter line).
    pub fn seg_bytes(&self) -> u32 {
        (self.line_bytes / SEGMENTS_PER_LINE).max(1)
    }

    /// Off-chip beats (4-byte words) per segment.
    pub fn seg_beats(&self) -> u64 {
        (u64::from(self.line_bytes) / 16).max(1)
    }

    /// Off-chip beats per full line.
    pub fn line_beats(&self) -> u64 {
        u64::from(self.line_bytes).div_ceil(4)
    }

    /// Tag slots per set: compressed banks track twice the tags so short
    /// lines can share a set's segment budget.
    pub fn tag_slots(&self) -> usize {
        self.ways as usize * if self.compressed { 2 } else { 1 }
    }

    /// Data-segment budget per set.
    pub fn seg_budget(&self) -> u64 {
        u64::from(self.ways) * u64::from(SEGMENTS_PER_LINE)
    }

    /// Number of segments a compressed encoding of `encoded_len` bytes
    /// occupies (always the full line when `codec` is off).
    pub fn segments_for(&self, codec: LlcCodec, encoded_len: usize) -> u32 {
        if codec == LlcCodec::Off {
            return SEGMENTS_PER_LINE;
        }
        let segs = encoded_len.div_ceil(self.seg_bytes() as usize);
        u32::try_from(segs.clamp(1, SEGMENTS_PER_LINE as usize))
            .expect("segment count clamped to 4")
    }
}

/// Per-bank access counters, all integer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LlcBankStats {
    /// Lookups routed to the bank.
    pub lookups: u64,
    /// Lookups that hit for a read (L1 fill served on-chip).
    pub read_hits: u64,
    /// Lookups that hit for a write (L1 write-back absorbed in place).
    pub write_hits: u64,
    /// Lines inserted on a miss.
    pub inserts: u64,
    /// Lines evicted to make room (clean or dirty).
    pub evictions: u64,
}

/// Outcome of one LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcAccess {
    /// Bank the line maps to.
    pub bank: u32,
    /// Whether the tag was present.
    pub hit: bool,
    /// Segments the line occupied before this access on a hit, or the
    /// segments just inserted on a miss.
    pub stored_segs: u32,
    /// Total segments of dirty lines this access evicted.
    pub evicted_dirty_segs: u64,
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    segs: u32,
    dirty: bool,
    stamp: u64,
}

/// The shared NUCA LLC simulator.
#[derive(Debug, Clone)]
pub struct NucaLlc {
    cfg: LlcConfig,
    sets: Vec<Vec<Line>>,
    stats: Vec<LlcBankStats>,
    stamp: u64,
}

impl NucaLlc {
    /// Builds an empty LLC.
    ///
    /// # Panics
    ///
    /// Panics when the geometry leaves a bank without a complete set.
    pub fn new(cfg: LlcConfig) -> Self {
        assert!(cfg.banks > 0, "the LLC needs at least one bank");
        assert!(cfg.ways > 0, "LLC banks need at least one way");
        let sets = cfg.sets_per_bank();
        assert!(
            sets > 0,
            "bank of {} B cannot hold one set of {} {}-byte lines",
            cfg.bank_bytes,
            cfg.ways,
            cfg.line_bytes
        );
        let total = usize::try_from(u64::from(cfg.banks) * sets).expect("set count fits in usize");
        NucaLlc {
            cfg,
            sets: vec![Vec::new(); total],
            stats: vec![LlcBankStats::default(); cfg.banks as usize],
            stamp: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &LlcConfig {
        &self.cfg
    }

    /// Per-bank counters, in bank order.
    pub fn stats(&self) -> &[LlcBankStats] {
        &self.stats
    }

    /// The NUCA home bank of `addr` as seen by `core`: consecutive lines
    /// interleave across banks, offset by the core index so the cores'
    /// private address spaces spread over the whole LLC.
    pub fn bank_of(&self, core: u32, addr: u64) -> u32 {
        let line = addr / u64::from(self.cfg.line_bytes);
        u32::try_from((line + u64::from(core)) % u64::from(self.cfg.banks))
            .expect("bank index below the u32 bank count")
    }

    fn set_index(&self, bank: u32, addr: u64) -> usize {
        let line = addr / u64::from(self.cfg.line_bytes);
        let set = (line / u64::from(self.cfg.banks)) % self.cfg.sets_per_bank();
        usize::try_from(u64::from(bank) * self.cfg.sets_per_bank() + set)
            .expect("set index fits in usize")
    }

    /// One lookup by `core` for the line containing `addr`, which
    /// occupies `segs` segments in its current encoding. A write is an
    /// absorbed L1 write-back (write-allocate, marks dirty, re-sizes the
    /// line); a read is an L1 fill request (inserts clean on a miss).
    pub fn access(&mut self, core: u32, addr: u64, segs: u32, write: bool) -> LlcAccess {
        debug_assert!((1..=SEGMENTS_PER_LINE).contains(&segs));
        let bank = self.bank_of(core, addr);
        let set_idx = self.set_index(bank, addr);
        let tag = (u64::from(core) << 48) | (addr / u64::from(self.cfg.line_bytes));
        self.stamp += 1;
        let stamp = self.stamp;
        self.stats[bank as usize].lookups += 1;

        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.tag == tag) {
            let stored = set[pos].segs;
            set[pos].stamp = stamp;
            if write {
                set[pos].dirty = true;
                set[pos].segs = segs;
                self.stats[bank as usize].write_hits += 1;
            } else {
                self.stats[bank as usize].read_hits += 1;
            }
            let evicted = self.shrink_to_budget(set_idx, bank, tag);
            return LlcAccess {
                bank,
                hit: true,
                stored_segs: stored,
                evicted_dirty_segs: evicted,
            };
        }

        set.push(Line {
            tag,
            segs,
            dirty: write,
            stamp,
        });
        self.stats[bank as usize].inserts += 1;
        let evicted = self.shrink_to_budget(set_idx, bank, tag);
        LlcAccess {
            bank,
            hit: false,
            stored_segs: segs,
            evicted_dirty_segs: evicted,
        }
    }

    /// Evicts LRU lines (never `keep`) until the set fits its tag-slot
    /// and segment budgets; returns the dirty segments evicted.
    fn shrink_to_budget(&mut self, set_idx: usize, bank: u32, keep: u64) -> u64 {
        let tag_slots = self.cfg.tag_slots();
        let budget = self.cfg.seg_budget();
        let mut dirty_segs = 0u64;
        loop {
            let set = &mut self.sets[set_idx];
            let used: u64 = set.iter().map(|l| u64::from(l.segs)).sum();
            if set.len() <= tag_slots && used <= budget {
                break;
            }
            let victim = set
                .iter()
                .enumerate()
                .filter(|(_, l)| l.tag != keep)
                .min_by_key(|(_, l)| l.stamp)
                .map(|(i, _)| i);
            let Some(i) = victim else { break };
            let line = set.remove(i);
            self.stats[bank as usize].evictions += 1;
            if line.dirty {
                dirty_segs += u64::from(line.segs);
            }
        }
        dirty_segs
    }

    /// Drains every dirty line (bank order, set order, residency order)
    /// and returns the total dirty segments written back.
    pub fn flush(&mut self) -> u64 {
        let mut dirty_segs = 0u64;
        for set in &mut self.sets {
            for line in set.drain(..) {
                if line.dirty {
                    dirty_segs += u64::from(line.segs);
                }
            }
        }
        dirty_segs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(compressed: bool) -> LlcConfig {
        LlcConfig {
            banks: 2,
            bank_bytes: 2048,
            line_bytes: 64,
            ways: 2,
            compressed,
        }
    }

    #[test]
    fn geometry_derives_consistently() {
        let cfg = small_cfg(true);
        assert_eq!(cfg.sets_per_bank(), 16);
        assert_eq!(cfg.seg_bytes(), 16);
        assert_eq!(cfg.seg_beats(), 4);
        assert_eq!(cfg.line_beats(), 16);
        assert_eq!(cfg.tag_slots(), 4);
        assert_eq!(cfg.seg_budget(), 8);
        assert_eq!(small_cfg(false).tag_slots(), 2);
    }

    #[test]
    fn segments_for_clamps_and_respects_off() {
        let cfg = small_cfg(true);
        assert_eq!(cfg.segments_for(LlcCodec::Off, 1), SEGMENTS_PER_LINE);
        assert_eq!(cfg.segments_for(LlcCodec::Zrun, 0), 1);
        assert_eq!(cfg.segments_for(LlcCodec::Zrun, 16), 1);
        assert_eq!(cfg.segments_for(LlcCodec::Zrun, 17), 2);
        assert_eq!(cfg.segments_for(LlcCodec::Zrun, 640), SEGMENTS_PER_LINE);
    }

    #[test]
    fn repeated_access_hits() {
        let mut llc = NucaLlc::new(small_cfg(false));
        let miss = llc.access(0, 0x1000, 4, false);
        assert!(!miss.hit);
        let hit = llc.access(0, 0x1000, 4, false);
        assert!(hit.hit);
        assert_eq!(hit.bank, miss.bank);
        assert_eq!(llc.stats()[miss.bank as usize].read_hits, 1);
        assert_eq!(llc.stats()[miss.bank as usize].inserts, 1);
    }

    #[test]
    fn cores_do_not_alias_each_others_lines() {
        let mut llc = NucaLlc::new(small_cfg(false));
        llc.access(0, 0x1000, 4, true);
        // Same address, different core: a distinct line (private spaces).
        let other = llc.access(1, 0x1000, 4, false);
        assert!(!other.hit);
    }

    #[test]
    fn lru_eviction_writes_back_dirty_segments() {
        let cfg = small_cfg(false); // 2 ways, uncompressed
        let mut llc = NucaLlc::new(cfg);
        // Three lines mapping to the same (bank, set): line index stride is
        // banks * sets_per_bank lines = 2 * 16 * 64 B = 2048 B.
        let stride = 2048u64;
        let a = llc.access(0, 0, 4, true);
        llc.access(0, stride, 4, false);
        let c = llc.access(0, 2 * stride, 4, false);
        assert_eq!(a.bank, c.bank);
        // The dirty LRU line (a) was evicted: 4 dirty segments.
        assert_eq!(c.evicted_dirty_segs, 4);
        assert_eq!(llc.stats()[a.bank as usize].evictions, 1);
        // And re-reading (a) misses now.
        assert!(!llc.access(0, 0, 4, false).hit);
    }

    #[test]
    fn compression_packs_more_lines_per_set() {
        // Compressed: 4 tags vs 8-segment budget. Four 2-segment lines fit.
        let mut llc = NucaLlc::new(small_cfg(true));
        let stride = 2048u64;
        for i in 0..4u64 {
            llc.access(0, i * stride, 2, true);
        }
        let bank = llc.bank_of(0, 0);
        assert_eq!(llc.stats()[bank as usize].evictions, 0);
        for i in 0..4u64 {
            assert!(llc.access(0, i * stride, 2, false).hit, "line {i}");
        }
        // Uncompressed, the same four full lines force two evictions.
        let mut plain = NucaLlc::new(small_cfg(false));
        for i in 0..4u64 {
            plain.access(0, i * stride, 4, true);
        }
        assert_eq!(plain.stats()[bank as usize].evictions, 2);
    }

    #[test]
    fn resizing_a_hit_line_can_evict_neighbours() {
        let mut llc = NucaLlc::new(small_cfg(true));
        let stride = 2048u64;
        // Fill the segment budget: four 2-segment lines (8 segments).
        for i in 0..4u64 {
            llc.access(0, i * stride, 2, true);
        }
        // Rewrite line 3 at full size: budget 8 -> needs 2+2+2+4; the LRU
        // line (0) must go.
        let acc = llc.access(0, 3 * stride, 4, true);
        assert!(acc.hit);
        assert_eq!(acc.evicted_dirty_segs, 2);
        assert!(!llc.access(0, 0, 2, false).hit);
    }

    #[test]
    fn flush_drains_exactly_the_dirty_lines() {
        let mut llc = NucaLlc::new(small_cfg(false));
        llc.access(0, 0, 4, true); // dirty
        llc.access(0, 64, 4, false); // clean
        llc.access(1, 128, 4, true); // dirty
        assert_eq!(llc.flush(), 8);
        assert_eq!(llc.flush(), 0);
    }

    #[test]
    fn bank_mapping_interleaves_lines_and_cores() {
        let llc = NucaLlc::new(small_cfg(false));
        assert_ne!(llc.bank_of(0, 0), llc.bank_of(0, 64));
        assert_ne!(llc.bank_of(0, 0), llc.bank_of(1, 0));
        assert_eq!(llc.bank_of(0, 0), llc.bank_of(0, 128));
    }
}
