//! Chip-multiprocessor scenario pack: N TinyRISC cores behind private L1
//! D-caches sharing a compressed NUCA last-level cache whose bank
//! partitions sit on heterogeneous technology nodes under a chip power
//! budget.
//!
//! The DATE 2003 source sessions evaluate a single ARM7-class core; this
//! crate scales the same energy models to the chip-multiprocessor regime
//! the "Semiconductor Challenges" framing points at, following two
//! follow-on lines of work: compressed NUCA LLCs (per-line
//! `lpmem-compress` codecs let a bank hold up to twice the lines in the
//! same segment budget) and dark-silicon heterogeneous banking (each LLC
//! bank partition gets its own `TechNode`, and a chip power budget gates
//! the coldest banks into retention sleep via the `partition::sleep`
//! machinery).
//!
//! Three layers:
//!
//! - [`CmpSpec`] — the off-by-default scenario knob, following the
//!   `FaultSpec` template (label/parse round-trip, `off()` must leave
//!   every existing report byte-identical);
//! - [`NucaLlc`] — tag/segment bookkeeping of the shared cache:
//!   line-interleaved bank mapping, compressed placement, global-LRU
//!   replacement on the interleaved logical clock;
//! - [`simulate_cmp`] — the round-robin interleaved replay of the cores'
//!   data traces through private L1s (`lpmem-mem`) into the LLC, with
//!   dark-silicon gating, integer-first counters, energy/area pricing
//!   (`lpmem-energy`), and an optional fault campaign (`lpmem-fault`)
//!   over the LLC arrays.
//!
//! The flow/sweep/explore wiring lives in `lpmem-core` (`run_cmp`) and
//! the harness crates, exactly as `lpmem-fault` is wired. See
//! `DESIGN.md` §13 for the model derivation and the degeneracy
//! guarantees.

#![warn(missing_docs)]

pub mod llc;
pub mod sim;
pub mod spec;

pub use llc::{LlcAccess, LlcBankStats, LlcConfig, NucaLlc, SEGMENTS_PER_LINE};
pub use sim::{simulate_cmp, CmpOutcome, CmpReport, CoreRun};
pub use spec::{CmpSpec, LlcCodec, DEFAULT_QUANTUM, TAG_CMP};
