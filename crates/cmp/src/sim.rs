//! The interleaved CMP simulation: N cores' data traces replayed
//! round-robin through private L1s into the shared compressed NUCA LLC,
//! with dark-silicon gating, energy/area pricing, and an optional fault
//! campaign over the LLC arrays.
//!
//! Determinism: the round-robin arbiter and the LLC's global LRU stamp
//! are pure functions of the input traces and the spec, so two runs of
//! [`simulate_cmp`] are bit-identical regardless of the worker count of
//! whatever harness calls it. All counters are integer; floats appear
//! only in the energy/area pricing at the end and in the gating
//! threshold comparison (a pure function of the spec).

use lpmem_compress::LineCodec;
use lpmem_energy::{AreaReport, Energy, EnergyReport, OffChipModel, SramModel, Technology};
use lpmem_fault::{run_campaign, BankExposure, FaultExposure, FaultSpec, ReliabilityReport};
use lpmem_mem::{Cache, CacheConfig, FlatMemory, RecordingBacking};
use lpmem_partition::sleep::SleepPolicy;
use lpmem_trace::{AccessKind, MemEvent, Trace};

use crate::llc::{LlcConfig, NucaLlc, SEGMENTS_PER_LINE};
use crate::spec::{CmpSpec, LlcCodec, TAG_CMP};

/// Cycles of a zero-hop LLC hit (tag + segment read at the home bank);
/// each NUCA ring hop adds one cycle.
const LLC_HIT_CYCLES: u64 = 2;

/// Cycles per off-chip 4-byte beat (matches the explorer's latency
/// model).
const OFFCHIP_BEAT_CYCLES: u64 = 10;

/// Bit transitions charged per beat per NUCA ring hop (half of a 32-bit
/// flit toggling).
const HOP_TRANSITIONS_PER_BEAT: u64 = 16;

/// Sleep-policy timeout (in ticks) used when pricing dark banks — the
/// same convention the fault-exposure derivation uses for gated banks.
const DARK_SLEEP_TIMEOUT: u64 = 32;

/// One core's workload: its memory-access trace and the data image the
/// trace replays against.
#[derive(Debug, Clone)]
pub struct CoreRun {
    /// The core's full trace (instruction fetches are ignored here; the
    /// data events drive the memory hierarchy).
    pub trace: Trace,
    /// The core's private data image (cores do not share memory).
    pub image: FlatMemory,
}

/// Machine-readable outcome counters of a CMP run, carried on
/// `FlowSummary` and dumped as conditional JSONL fields.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CmpReport {
    /// The spec label the run was configured with.
    pub spec: String,
    /// Simulated cores.
    pub cores: u32,
    /// LLC banks actually modeled (0 on the passthrough path, where the
    /// LLC degenerates to the flat next level).
    pub llc_banks: u32,
    /// Banks dark-silicon-gated by the power budget.
    pub dark_banks: u32,
    /// LLC lookups (lit banks only; dark-bank traffic bypasses).
    pub llc_lookups: u64,
    /// LLC hits (read + absorbed write-back).
    pub llc_hits: u64,
    /// Lines inserted into the LLC.
    pub llc_lines: u64,
    /// Inserted/updated lines that compressed below full size.
    pub llc_compressed_lines: u64,
    /// Off-chip 4-byte beats moved (fills + write-backs + dark bypass).
    pub offchip_beats: u64,
    /// Data-side cycle count: events + NUCA hit latency + off-chip
    /// stalls + protection decode latency.
    pub cycles: u64,
}

/// Full outcome of an active CMP simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpOutcome {
    /// Data-side energy with no LLC: private L1s spilling straight
    /// off-chip at raw line size (the reference the saving is against).
    pub baseline: EnergyReport,
    /// Data-side energy with the compressed NUCA LLC in place.
    pub optimized: EnergyReport,
    /// Total data events replayed across all cores.
    pub events: u64,
    /// Outcome counters.
    pub report: CmpReport,
    /// LLC silicon area (bank arrays + protection overhead).
    pub area: AreaReport,
    /// Fault-campaign outcome over the LLC arrays, when enabled.
    pub reliability: Option<ReliabilityReport>,
}

/// Routes L1 miss traffic: lit banks through the LLC, dark banks
/// straight off-chip. Owns every integer counter of the run.
struct TrafficRouter {
    llc: NucaLlc,
    codec: Option<Box<dyn LineCodec>>,
    lit: Vec<bool>,
    cores_banks: u64,
    line_words: u64,
    offchip_fill_beats: u64,
    offchip_wb_beats: u64,
    dark_beats: u64,
    hop_beats: u64,
    llc_cycles: u64,
    codec_words: u64,
    compressed_lines: u64,
}

impl TrafficRouter {
    /// Ring distance from the requesting core's home bank to `bank`.
    fn hops(&self, core: u32, bank: u32) -> u64 {
        let banks = self.cores_banks;
        let home = u64::from(core) % banks;
        let dist = u64::from(bank).abs_diff(home);
        dist.min(banks - dist)
    }

    /// One L1<->next-level line transfer: a write-back (`write`) or a
    /// fill request.
    fn line_traffic(&mut self, core: u32, addr: u64, line: &[u8], write: bool) {
        let cfg = *self.llc.config();
        let bank = self.llc.bank_of(core, addr);
        if !self.lit[bank as usize] {
            // Dark bank: the address range falls through to main memory
            // at raw line size.
            self.dark_beats += cfg.line_beats();
            return;
        }
        let segs = match &self.codec {
            Some(codec) => {
                self.codec_words += self.line_words;
                let encoded = codec.compress(line).len();
                let segs = encoded.div_ceil(cfg.seg_bytes() as usize);
                u32::try_from(segs.clamp(1, SEGMENTS_PER_LINE as usize))
                    .expect("segment count clamped to 4")
            }
            None => SEGMENTS_PER_LINE,
        };
        let hops = self.hops(core, bank);
        self.hop_beats += hops
            .checked_mul(cfg.line_beats())
            .expect("mesh hop count times line beats stays far below u64::MAX");
        self.llc_cycles += LLC_HIT_CYCLES + hops;
        let access = self.llc.access(core, addr, segs, write);
        if access.hit {
            if !write && access.stored_segs < SEGMENTS_PER_LINE && self.codec.is_some() {
                // Decompress the stored line on its way back to the L1.
                self.codec_words += self.line_words;
            }
        } else if !write {
            // Read miss: the line comes from main memory uncompressed.
            self.offchip_fill_beats += cfg.line_beats();
        }
        if (write || !access.hit) && segs < SEGMENTS_PER_LINE {
            self.compressed_lines += 1;
        }
        self.offchip_wb_beats += access
            .evicted_dirty_segs
            .checked_mul(cfg.seg_beats())
            .expect("at most four dirty segments per eviction times bounded seg beats");
    }
}

/// Runs the active CMP scenario: interleaved L1 replay, shared LLC,
/// gating, pricing, and the optional LLC fault campaign.
///
/// # Panics
///
/// Panics when `spec` is disabled or a passthrough (callers route those
/// through the single-core flow), when the run count does not match
/// `spec.cores`, or when the LLC geometry is invalid for the L1 line
/// size (see [`CmpSpec::validate`]).
pub fn simulate_cmp(
    spec: &CmpSpec,
    l1: CacheConfig,
    base: &Technology,
    runs: Vec<CoreRun>,
    fault: &FaultSpec,
    seed: u64,
) -> CmpOutcome {
    assert!(
        spec.enabled() && !spec.passthrough(),
        "simulate_cmp models active scenarios only"
    );
    if let Err(why) = spec.validate(l1.line_bytes()) {
        panic!("invalid CMP spec {}: {why}", spec.label());
    }
    assert_eq!(runs.len(), spec.cores as usize, "one CoreRun per core");

    let banks = spec.banks as usize;
    let bank_bytes = u64::from(spec.bank_kib) * 1024;
    let line_bytes = l1.line_bytes();
    let cfg = LlcConfig {
        banks: spec.banks,
        bank_bytes,
        line_bytes,
        ways: spec.ways,
        compressed: spec.codec != LlcCodec::Off,
    };

    // Per-core data event streams; the tick clock is one data event.
    let events: Vec<Vec<MemEvent>> = runs
        .iter()
        .map(|r| {
            r.trace
                .iter()
                .copied()
                .filter(|e| e.kind.is_data())
                .collect()
        })
        .collect();
    let total_events: u64 = events.iter().map(|e| e.len() as u64).sum();

    // Bank-to-technology assignment via the partition machinery.
    let partition = spec.tech_partition();
    let mut bank_tech: Vec<Technology> = Vec::with_capacity(banks);
    for (p, range) in partition.banks().enumerate() {
        let tech = spec.partition_technology(p, base);
        for _ in range {
            bank_tech.push(tech.clone());
        }
    }

    // Heat pass + dark-silicon gating: gate the coldest banks (by heat,
    // then bank index) until the LLC's standby power fits the budget.
    let probe = NucaLlc::new(cfg);
    let mut heat = vec![0u64; banks];
    for (core, evs) in events.iter().enumerate() {
        let core = u32::try_from(core).expect("core count below u32::MAX");
        for ev in evs {
            heat[probe.bank_of(core, ev.addr) as usize] += 1;
        }
    }
    let mut lit = vec![true; banks];
    let mut dark_banks = 0u32;
    if spec.budget_uw > 0 {
        // pJ per tick at 100 MHz is 1e8 pJ/s = 100 µW.
        let power_uw: Vec<f64> = bank_tech
            .iter()
            .map(|t| t.sram_idle_pj_per_kib * f64::from(spec.bank_kib) * 100.0)
            .collect();
        let mut order: Vec<usize> = (0..banks).collect();
        order.sort_by_key(|&b| (heat[b], b));
        let mut standby: f64 = power_uw.iter().sum();
        for &b in &order {
            if standby <= spec.budget_uw as f64 {
                break;
            }
            lit[b] = false;
            dark_banks += 1;
            standby -= power_uw[b] * (1.0 - bank_tech[b].sram_sleep_frac);
        }
    }

    // Interleaved replay.
    let mut router = TrafficRouter {
        llc: probe,
        codec: spec.codec.codec(),
        lit,
        cores_banks: u64::from(spec.banks),
        line_words: u64::from(line_bytes / 4),
        offchip_fill_beats: 0,
        offchip_wb_beats: 0,
        dark_beats: 0,
        hop_beats: 0,
        llc_cycles: 0,
        codec_words: 0,
        compressed_lines: 0,
    };
    let mut caches: Vec<Cache> = (0..runs.len()).map(|_| Cache::new(l1)).collect();
    let mut mems: Vec<RecordingBacking<FlatMemory>> = runs
        .into_iter()
        .map(|r| RecordingBacking::new(r.image))
        .collect();
    let mut pos = vec![0usize; events.len()];
    let quantum = spec.quantum as usize;
    let mut remaining = total_events;
    while remaining > 0 {
        for core in 0..events.len() {
            let evs = &events[core];
            let take = quantum.min(evs.len() - pos[core]);
            for _ in 0..take {
                let ev = evs[pos[core]];
                pos[core] += 1;
                let n = (ev.size as usize).min(4);
                match ev.kind {
                    AccessKind::Read => {
                        let mut buf = [0u8; 4];
                        caches[core].read(ev.addr, &mut buf[..n], &mut mems[core]);
                    }
                    AccessKind::Write => {
                        let bytes = ev.value.to_le_bytes();
                        caches[core].write(ev.addr, &bytes[..n], &mut mems[core]);
                    }
                    AccessKind::InstrFetch => unreachable!("fetches are filtered out"),
                }
                drain_l1_traffic(&mut router, &mut mems[core], core, line_bytes);
            }
            remaining -= take as u64;
        }
    }
    for core in 0..events.len() {
        caches[core].flush(&mut mems[core]);
        drain_l1_traffic(&mut router, &mut mems[core], core, line_bytes);
    }
    router.offchip_wb_beats += router
        .llc
        .flush()
        .checked_mul(router.llc.config().seg_beats())
        .expect("flushed dirty segments bounded by LLC capacity times seg beats");

    price_outcome(
        spec,
        base,
        &bank_tech,
        router,
        &caches,
        l1,
        total_events,
        dark_banks,
        fault,
        seed,
    )
}

/// Forwards the L1's recorded miss traffic to the router: evictions
/// (write-backs) first, then the fills that displaced them.
fn drain_l1_traffic(
    router: &mut TrafficRouter,
    mem: &mut RecordingBacking<FlatMemory>,
    core: usize,
    line_bytes: u32,
) {
    if mem.fills().is_empty() && mem.write_backs().is_empty() {
        return;
    }
    let core = u32::try_from(core).expect("core count below u32::MAX");
    let write_backs: Vec<(u64, Vec<u8>)> = mem.write_backs().to_vec();
    let fills: Vec<u64> = mem.fills().to_vec();
    mem.clear_log();
    for (addr, data) in &write_backs {
        router.line_traffic(core, *addr, data, true);
    }
    let mut line = vec![0u8; line_bytes as usize];
    for &addr in &fills {
        for (i, byte) in line.iter_mut().enumerate() {
            *byte = mem.inner().read_u8(addr + i as u64);
        }
        router.line_traffic(core, addr, &line, false);
    }
}

/// Converts the run's integer counters into energy/area/reliability.
#[allow(clippy::too_many_arguments)]
fn price_outcome(
    spec: &CmpSpec,
    base: &Technology,
    bank_tech: &[Technology],
    router: TrafficRouter,
    caches: &[Cache],
    l1: CacheConfig,
    total_events: u64,
    dark_banks: u32,
    fault: &FaultSpec,
    seed: u64,
) -> CmpOutcome {
    let bank_bytes = u64::from(spec.bank_kib) * 1024;
    let cfg = *router.llc.config();
    let stats = router.llc.stats();
    let off = OffChipModel::new(base);
    let l1_sram = SramModel::new(base);

    // Shared L1 cost (both sides): reads/writes against the private L1s.
    let mut dcache = Energy::ZERO;
    let mut l1_fills = 0u64;
    let mut l1_wbs = 0u64;
    for cache in caches {
        let s = cache.stats();
        dcache += l1_sram.read_energy(l1.size_bytes()) * s.reads as f64
            + l1_sram.write_energy(l1.size_bytes()) * s.writes as f64;
        l1_fills += s.fills;
        l1_wbs += s.writebacks;
    }

    let mut baseline = EnergyReport::new();
    baseline.add("dcache", dcache);
    baseline.add(
        "offchip.fill",
        off.transfer_energy(l1_fills * cfg.line_beats()),
    );
    baseline.add(
        "offchip.writeback",
        off.transfer_energy(l1_wbs * cfg.line_beats()),
    );

    let mut optimized = EnergyReport::new();
    optimized.add("dcache", dcache);
    let mut lookups = 0u64;
    let mut hits = 0u64;
    let mut inserts = 0u64;
    for (b, stat) in stats.iter().enumerate() {
        let sram = SramModel::new(&bank_tech[b]);
        optimized.add(
            "llc.read",
            sram.read_energy(bank_bytes) * stat.read_hits as f64,
        );
        optimized.add(
            "llc.write",
            sram.write_energy(bank_bytes) * (stat.inserts + stat.write_hits) as f64,
        );
        let leak = sram.idle_energy(bank_bytes, total_events);
        if router.lit[b] {
            optimized.add("llc.leak.lit", leak);
        } else {
            let policy = SleepPolicy::from_tech(&bank_tech[b], DARK_SLEEP_TIMEOUT);
            optimized.add("llc.leak.dark", leak * policy.sleep_frac);
        }
        lookups += stat.lookups;
        hits += stat.read_hits + stat.write_hits;
        inserts += stat.inserts;
    }
    optimized.add(
        "llc.select",
        Energy::from_pj(base.bank_select_pj * u64::from(spec.banks) as f64 * lookups as f64),
    );
    optimized.add(
        "llc.hop",
        Energy::from_pj(
            base.transition_pj(base.onchip_bus_cap_pf)
                * (router.hop_beats * HOP_TRANSITIONS_PER_BEAT) as f64,
        ),
    );
    optimized.add(
        "llc.codec",
        Energy::from_pj(base.codec_word_pj * router.codec_words as f64),
    );
    optimized.add(
        "offchip.fill",
        off.transfer_energy(router.offchip_fill_beats),
    );
    optimized.add(
        "offchip.writeback",
        off.transfer_energy(router.offchip_wb_beats),
    );
    optimized.add("offchip.dark", off.transfer_energy(router.dark_beats));
    if fault.enabled() {
        optimized.add("llc.prot", fault.protection.access_overhead(base, lookups));
    }

    // LLC silicon: bank arrays (per partition technology) + protection.
    let mut area = AreaReport::new();
    for tech in bank_tech {
        let sram = SramModel::new(tech);
        area.add("llc.cells", sram.cell_area_mm2(bank_bytes));
        area.add("llc.periphery", sram.periphery_area_mm2(bank_bytes));
    }
    area.merge(
        &fault
            .protection
            .area_overhead(base, bank_bytes * u64::from(spec.banks)),
    );

    // Fault campaign over the LLC arrays, one exposure per technology
    // partition. Dark banks sit in retention sleep the whole run.
    let reliability = if fault.enabled() {
        let mut report = ReliabilityReport::default();
        for (p, range) in spec.tech_partition().banks().enumerate() {
            let tech = spec.partition_technology(p, base);
            let exposure = FaultExposure {
                domain: TAG_CMP + p as u64,
                banks: range
                    .map(|b| BankExposure {
                        words: bank_bytes / 4,
                        active_ticks: if router.lit[b] { total_events } else { 0 },
                        sleep_ticks: if router.lit[b] { 0 } else { total_events },
                        reads: stats[b].read_hits,
                        writes: stats[b].inserts + stats[b].write_hits,
                    })
                    .collect(),
            };
            report.merge(&run_campaign(fault, &tech, &exposure, seed));
        }
        Some(report)
    } else {
        None
    };

    let offchip_beats = router.offchip_fill_beats + router.offchip_wb_beats + router.dark_beats;
    let read_hits: u64 = stats.iter().map(|s| s.read_hits).sum();
    let cycles = total_events
        + router.llc_cycles
        + OFFCHIP_BEAT_CYCLES * offchip_beats
        + fault.protection.extra_read_cycles() * read_hits;

    CmpOutcome {
        baseline,
        optimized,
        events: total_events,
        report: CmpReport {
            spec: spec.label(),
            cores: spec.cores,
            llc_banks: spec.banks,
            dark_banks,
            llc_lookups: lookups,
            llc_hits: hits,
            llc_lines: inserts,
            llc_compressed_lines: router.compressed_lines,
            offchip_beats,
            cycles,
        },
        area,
        reliability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_energy::TechNode;
    use lpmem_fault::Protection;

    /// A deterministic synthetic core: a hot working set revisited often,
    /// a cold streaming region, and smooth (compressible) store values.
    fn synthetic_run(salt: u64, events: u64) -> CoreRun {
        let mut trace = Trace::new();
        for i in 0..events {
            let addr = if i % 3 == 0 {
                0x1000 + (i % 64) * 4
            } else {
                0x8000 + salt * 4096 + (i * 4) % 16384
            };
            let value = u32::try_from((1000 + 3 * i) & 0xFFFF_FFFF).expect("masked to 32 bits");
            if i % 4 == 0 {
                trace.push(MemEvent::write(addr).with_value(value));
            } else {
                trace.push(MemEvent::read(addr));
            }
        }
        CoreRun {
            trace,
            image: FlatMemory::new(),
        }
    }

    fn l1() -> CacheConfig {
        CacheConfig::new(1 << 10, 64, 2).expect("valid L1 geometry")
    }

    fn runs(spec: &CmpSpec, events: u64) -> Vec<CoreRun> {
        (0..u64::from(spec.cores))
            .map(|c| synthetic_run(c, events))
            .collect()
    }

    #[test]
    fn simulation_is_deterministic() {
        let spec = CmpSpec::quad();
        let base = Technology::tech180();
        let fault = FaultSpec::accelerated(Protection::Secded);
        let a = simulate_cmp(&spec, l1(), &base, runs(&spec, 4000), &fault, 2003);
        let b = simulate_cmp(&spec, l1(), &base, runs(&spec, 4000), &fault, 2003);
        assert_eq!(a, b);
        assert!(a.events == 16_000);
        assert!(a.report.llc_lookups > 0);
        assert!(a.report.cycles > a.events);
    }

    #[test]
    fn power_budget_gates_the_coldest_banks() {
        let budgeted = CmpSpec::quad();
        let unbudgeted = CmpSpec {
            budget_uw: 0,
            ..budgeted.clone()
        };
        let base = Technology::tech180();
        let off = FaultSpec::off();
        let dark = simulate_cmp(&budgeted, l1(), &base, runs(&budgeted, 4000), &off, 7);
        let lit = simulate_cmp(&unbudgeted, l1(), &base, runs(&unbudgeted, 4000), &off, 7);
        // The t90 half leaks 256 µW per 32 KiB bank; a 600 µW budget
        // must gate some of it.
        assert!(dark.report.dark_banks > 0, "{:?}", dark.report);
        assert_eq!(lit.report.dark_banks, 0);
        // Dark banks trade leakage for bypass traffic.
        assert!(dark.optimized.component("llc.leak.lit") < lit.optimized.component("llc.leak.lit"));
        assert!(dark.optimized.component("offchip.dark") > Energy::ZERO);
        assert_eq!(lit.optimized.component("offchip.dark"), Energy::ZERO);
    }

    #[test]
    fn llc_compression_packs_lines_and_cuts_writeback_beats() {
        let compressed = CmpSpec {
            budget_uw: 0,
            techs: Vec::new(),
            ..CmpSpec::quad()
        };
        let plain = CmpSpec {
            codec: LlcCodec::Off,
            ..compressed.clone()
        };
        let base = Technology::tech180();
        let off = FaultSpec::off();
        let zrun = simulate_cmp(&compressed, l1(), &base, runs(&compressed, 4000), &off, 7);
        let raw = simulate_cmp(&plain, l1(), &base, runs(&plain, 4000), &off, 7);
        assert!(zrun.report.llc_compressed_lines > 0);
        assert_eq!(raw.report.llc_compressed_lines, 0);
        // Compressed placement holds more lines, so fewer beats leave the
        // chip; the codec energy shows up as a named component.
        assert!(zrun.report.offchip_beats < raw.report.offchip_beats);
        assert!(zrun.optimized.component("llc.codec") > Energy::ZERO);
        assert_eq!(raw.optimized.component("llc.codec"), Energy::ZERO);
    }

    #[test]
    fn fault_campaign_covers_partitions_and_prices_protection() {
        // Small hot banks: enough reads per LLC word that accelerated
        // upsets actually get consumed instead of all masking.
        let spec = CmpSpec {
            budget_uw: 0,
            bank_kib: 8,
            ..CmpSpec::quad()
        };
        let base = Technology::tech180();
        let protected = FaultSpec::accelerated(Protection::Secded);
        let bare = FaultSpec::accelerated(Protection::None);
        let sec = simulate_cmp(&spec, l1(), &base, runs(&spec, 20_000), &protected, 2003);
        let none = simulate_cmp(&spec, l1(), &base, runs(&spec, 20_000), &bare, 2003);
        let sec_rel = sec.reliability.expect("campaign ran");
        let none_rel = none.reliability.expect("campaign ran");
        assert!(sec_rel.injected > 0);
        assert!(
            sec_rel.silent < none_rel.silent,
            "secded {sec_rel:?} vs none {none_rel:?}"
        );
        assert!(sec.optimized.component("llc.prot") > Energy::ZERO);
        assert!(sec.area.component("prot.checkbits") > 0.0);
        // SECDED decode latency sits on the LLC read path.
        assert!(sec.report.cycles > none.report.cycles);
    }

    #[test]
    fn heterogeneous_partitions_price_their_own_node() {
        let hetero = CmpSpec {
            budget_uw: 0,
            ..CmpSpec::quad() // [t180, t90]
        };
        let homo = CmpSpec {
            techs: vec![TechNode::T180],
            ..hetero.clone()
        };
        let base = Technology::tech180();
        let off = FaultSpec::off();
        let h = simulate_cmp(&hetero, l1(), &base, runs(&hetero, 4000), &off, 7);
        let t180 = simulate_cmp(&homo, l1(), &base, runs(&homo, 4000), &off, 7);
        // The t90 half leaks an order of magnitude more.
        assert!(
            h.optimized.component("llc.leak.lit") > 2.0 * t180.optimized.component("llc.leak.lit")
        );
        // But its cells are smaller.
        assert!(h.area.component("llc.cells") < t180.area.component("llc.cells"));
    }
}
