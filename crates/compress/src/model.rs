//! Traffic model: how compression changes the beats moved off-chip.

use std::collections::HashMap;

use crate::codec::LineCodec;

/// Bytes per off-chip bus beat.
pub const BEAT_BYTES: usize = 4;

/// Aggregate result of compressing a write-back stream with one codec.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WritebackAnalysis {
    /// Lines examined.
    pub lines: u64,
    /// Lines whose encoding cleared the threshold (stored compressed).
    pub compressed_lines: u64,
    /// Beats an uncompressed system would move.
    pub raw_beats: u64,
    /// Beats actually moved under compression.
    pub actual_beats: u64,
    /// Words pushed through the codec datapath (charged codec energy; the
    /// unit examines every dirty line, compressible or not).
    pub codec_words: u64,
    /// Histogram of encoded sizes in beats (index = beats).
    pub size_histogram: Vec<u64>,
}

impl WritebackAnalysis {
    /// Mean compression ratio `raw / actual` (1.0 when idle).
    pub fn ratio(&self) -> f64 {
        if self.actual_beats == 0 {
            1.0
        } else {
            self.raw_beats as f64 / self.actual_beats as f64
        }
    }

    /// Fraction of beats eliminated, in `0.0..=1.0`.
    pub fn beats_saved_frac(&self) -> f64 {
        if self.raw_beats == 0 {
            0.0
        } else {
            1.0 - self.actual_beats as f64 / self.raw_beats as f64
        }
    }
}

/// Analyzes a write-back stream `(address, line_data)` under `codec`.
///
/// A line is stored compressed when its encoded size is at most
/// `threshold_frac` of the raw line (the hardware threshold of the 1B.2
/// scheme; `0.5` in the paper so that a compressed line occupies exactly
/// half a line slot). Encodings above the threshold ship raw, but still pay
/// codec energy for the attempt.
///
/// # Panics
///
/// Panics if `threshold_frac` is not within `(0.0, 1.0]` or a line is not a
/// non-empty multiple of four bytes.
pub fn analyze_writebacks<C: LineCodec + ?Sized>(
    codec: &C,
    write_backs: &[(u64, Vec<u8>)],
    threshold_frac: f64,
) -> WritebackAnalysis {
    assert!(
        threshold_frac > 0.0 && threshold_frac <= 1.0,
        "threshold must be in (0, 1], got {threshold_frac}"
    );
    let mut out = WritebackAnalysis::default();
    for (_, line) in write_backs {
        let raw_beats = line.len() / BEAT_BYTES;
        let bits = codec.compressed_bits(line);
        let threshold_bits = (line.len() * 8) as f64 * threshold_frac;
        let stored_beats = if (bits as f64) <= threshold_bits {
            out.compressed_lines += 1;
            bits.div_ceil(BEAT_BYTES * 8).max(1)
        } else {
            raw_beats
        };
        out.lines += 1;
        out.raw_beats += raw_beats as u64;
        out.actual_beats += stored_beats as u64;
        out.codec_words += (line.len() / 4) as u64;
        if out.size_histogram.len() <= stored_beats {
            out.size_histogram.resize(stored_beats + 1, 0);
        }
        out.size_histogram[stored_beats] += 1;
        #[cfg(debug_assertions)]
        {
            // The codec must be lossless for every shipped line.
            let encoded = codec.compress(line);
            debug_assert_eq!(&codec.decompress(&encoded, line.len()), line);
        }
    }
    out
}

/// Tracks which lines currently live compressed in main memory, so that
/// later **refills** of those lines are credited with the reduced beat
/// count too (the decompressor sits on the refill path).
#[derive(Debug, Clone, Default)]
pub struct CompressedMemoryModel {
    stored: HashMap<u64, usize>,
}

impl CompressedMemoryModel {
    /// Creates an empty model (everything stored raw).
    pub fn new() -> Self {
        CompressedMemoryModel::default()
    }

    /// Records a write-back of `line` at `addr` and returns the beats the
    /// write moved.
    pub fn write_back<C: LineCodec + ?Sized>(
        &mut self,
        codec: &C,
        addr: u64,
        line: &[u8],
        threshold_frac: f64,
    ) -> usize {
        let raw_beats = line.len() / BEAT_BYTES;
        let bits = codec.compressed_bits(line);
        let threshold_bits = (line.len() * 8) as f64 * threshold_frac;
        if (bits as f64) <= threshold_bits {
            let beats = bits.div_ceil(BEAT_BYTES * 8).max(1);
            self.stored.insert(addr, beats);
            beats
        } else {
            self.stored.remove(&addr);
            raw_beats
        }
    }

    /// Returns the beats a refill of `line_bytes` at `addr` moves (reduced
    /// when the line is stored compressed).
    pub fn fill_beats(&self, addr: u64, line_bytes: usize) -> usize {
        self.stored
            .get(&addr)
            .copied()
            .unwrap_or(line_bytes / BEAT_BYTES)
    }

    /// Number of lines currently stored compressed.
    pub fn compressed_lines(&self) -> usize {
        self.stored.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{DiffCodec, RawCodec};

    fn smooth_line(n: usize) -> Vec<u8> {
        (0..n as u32)
            .flat_map(|i| (1000 + 2 * i).to_le_bytes())
            .collect()
    }

    fn random_line(n: usize) -> Vec<u8> {
        (0..n as u32)
            .flat_map(|i| i.wrapping_mul(0x9E37_79B9).to_le_bytes())
            .collect()
    }

    #[test]
    fn smooth_lines_compress_random_do_not() {
        let wbs = vec![(0u64, smooth_line(8)), (32, random_line(8))];
        let a = analyze_writebacks(&DiffCodec::new(), &wbs, 0.5);
        assert_eq!(a.lines, 2);
        assert_eq!(a.compressed_lines, 1);
        assert_eq!(a.raw_beats, 16);
        assert!(a.actual_beats < 16);
        assert!(a.ratio() > 1.0);
    }

    #[test]
    fn raw_codec_never_compresses() {
        let wbs = vec![(0u64, smooth_line(8)); 4];
        let a = analyze_writebacks(&RawCodec::new(), &wbs, 0.5);
        assert_eq!(a.compressed_lines, 0);
        assert_eq!(a.actual_beats, a.raw_beats);
        assert_eq!(a.beats_saved_frac(), 0.0);
    }

    #[test]
    fn histogram_buckets_by_beats() {
        let wbs = vec![(0u64, smooth_line(8))];
        let a = analyze_writebacks(&DiffCodec::new(), &wbs, 0.5);
        let total: u64 = a.size_histogram.iter().sum();
        assert_eq!(total, 1);
        // The single smooth line stores in <= 4 beats (half of 8).
        let bucket = a.size_histogram.iter().position(|&c| c == 1).unwrap();
        assert!(bucket <= 4);
    }

    #[test]
    fn codec_energy_charged_even_when_incompressible() {
        let wbs = vec![(0u64, random_line(8))];
        let a = analyze_writebacks(&DiffCodec::new(), &wbs, 0.5);
        assert_eq!(a.compressed_lines, 0);
        assert_eq!(a.codec_words, 8);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        analyze_writebacks(&DiffCodec::new(), &[], 0.0);
    }

    #[test]
    fn memory_model_credits_refills() {
        let codec = DiffCodec::new();
        let mut m = CompressedMemoryModel::new();
        let line = smooth_line(8);
        let wb_beats = m.write_back(&codec, 0x100, &line, 0.5);
        assert!(wb_beats < 8);
        assert_eq!(m.fill_beats(0x100, 32), wb_beats);
        assert_eq!(m.fill_beats(0x200, 32), 8); // unknown line: raw
        assert_eq!(m.compressed_lines(), 1);
    }

    #[test]
    fn memory_model_overwrite_with_incompressible_reverts() {
        let codec = DiffCodec::new();
        let mut m = CompressedMemoryModel::new();
        m.write_back(&codec, 0x100, &smooth_line(8), 0.5);
        assert_eq!(m.compressed_lines(), 1);
        let beats = m.write_back(&codec, 0x100, &random_line(8), 0.5);
        assert_eq!(beats, 8);
        assert_eq!(m.fill_beats(0x100, 32), 8);
        assert_eq!(m.compressed_lines(), 0);
    }

    #[test]
    fn threshold_one_accepts_any_shrinkage() {
        let wbs = vec![(0u64, smooth_line(8))];
        let strict = analyze_writebacks(&DiffCodec::new(), &wbs, 0.25);
        let lax = analyze_writebacks(&DiffCodec::new(), &wbs, 1.0);
        assert!(lax.compressed_lines >= strict.compressed_lines);
    }
}
