//! Line codecs: the differential scheme of 1B.2 plus baselines.

use crate::bits::{BitReader, BitWriter};

/// A lossless codec over cache-line payloads.
///
/// Lines are treated as sequences of little-endian 32-bit words; every
/// implementation must satisfy
/// `decompress(&compress(line), line.len()) == line` for any line whose
/// length is a non-zero multiple of four (enforced by the property tests in this
/// module and exercised end-to-end by the compression flow).
pub trait LineCodec {
    /// A short lowercase name for reports (e.g. `"diff"`).
    fn name(&self) -> &'static str;

    /// Encodes a line.
    ///
    /// # Panics
    ///
    /// Panics if `line` is empty or its length is not a multiple of four.
    fn compress(&self, line: &[u8]) -> Vec<u8>;

    /// Decodes `line_len` bytes from `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a valid encoding of a `line_len`-byte line.
    fn decompress(&self, data: &[u8], line_len: usize) -> Vec<u8>;

    /// Exact encoded size in bits (the hardware truncates to this, while
    /// [`compress`](Self::compress) pads to whole bytes).
    fn compressed_bits(&self, line: &[u8]) -> usize {
        self.compress(line).len() * 8
    }
}

fn line_words(line: &[u8]) -> Vec<u32> {
    assert!(
        !line.is_empty() && line.len().is_multiple_of(4),
        "line must be a multiple of 4 bytes"
    );
    line.chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn words_to_bytes(words: &[u32]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

fn unzigzag(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

/// The 1B.2 differential codec.
///
/// Word 0 is stored verbatim; each subsequent word is encoded as the
/// zigzagged wrapping difference from its predecessor, packed with a 2-bit
/// width tag: `00`→4 bits, `01`→8, `10`→16, `11`→32. Signal buffers,
/// counters, pointers, and pixel rows — the dominant dirty data of media
/// kernels — have small word-to-word deltas and compress far below half a
/// line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffCodec;

impl DiffCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        DiffCodec
    }

    fn delta_width(delta_zz: u32) -> (u32, u32) {
        // (tag, payload width)
        if delta_zz < 1 << 4 {
            (0b00, 4)
        } else if delta_zz < 1 << 8 {
            (0b01, 8)
        } else if delta_zz < 1 << 16 {
            (0b10, 16)
        } else {
            (0b11, 32)
        }
    }
}

impl LineCodec for DiffCodec {
    fn name(&self) -> &'static str {
        "diff"
    }

    fn compress(&self, line: &[u8]) -> Vec<u8> {
        let words = line_words(line);
        let mut w = BitWriter::new();
        w.write(words[0], 32);
        let mut prev = words[0];
        for &word in &words[1..] {
            let delta = zigzag(word.wrapping_sub(prev) as i32);
            let (tag, width) = Self::delta_width(delta);
            w.write(tag, 2);
            w.write(delta, width);
            prev = word;
        }
        w.into_bytes()
    }

    fn decompress(&self, data: &[u8], line_len: usize) -> Vec<u8> {
        assert!(
            line_len >= 4 && line_len.is_multiple_of(4),
            "line must be a multiple of 4 bytes"
        );
        let n = line_len / 4;
        let mut r = BitReader::new(data);
        let first = r.read(32).expect("truncated diff stream");
        let mut words = Vec::with_capacity(n);
        words.push(first);
        let mut prev = first;
        for _ in 1..n {
            let tag = r.read(2).expect("truncated diff stream");
            let width = match tag {
                0b00 => 4,
                0b01 => 8,
                0b10 => 16,
                _ => 32,
            };
            let delta = r.read(width).expect("truncated diff stream");
            let word = prev.wrapping_add(unzigzag(delta) as u32);
            words.push(word);
            prev = word;
        }
        words_to_bytes(&words)
    }

    fn compressed_bits(&self, line: &[u8]) -> usize {
        let words = line_words(line);
        let mut bits = 32usize;
        let mut prev = words[0];
        for &word in &words[1..] {
            let delta = zigzag(word.wrapping_sub(prev) as i32);
            let (_, width) = Self::delta_width(delta);
            bits += 2 + width as usize;
            prev = word;
        }
        bits
    }
}

/// Baseline: zero elimination. A 1-bit-per-word presence mask followed by
/// the non-zero words verbatim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroRunCodec;

impl ZeroRunCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        ZeroRunCodec
    }
}

impl LineCodec for ZeroRunCodec {
    fn name(&self) -> &'static str {
        "zero"
    }

    fn compress(&self, line: &[u8]) -> Vec<u8> {
        let words = line_words(line);
        let mut w = BitWriter::new();
        for &word in &words {
            w.write((word != 0) as u32, 1);
        }
        for &word in &words {
            if word != 0 {
                w.write(word, 32);
            }
        }
        w.into_bytes()
    }

    fn decompress(&self, data: &[u8], line_len: usize) -> Vec<u8> {
        let n = line_len / 4;
        let mut r = BitReader::new(data);
        let mask: Vec<bool> = (0..n)
            .map(|_| r.read(1).expect("truncated zero stream") == 1)
            .collect();
        let words: Vec<u32> = mask
            .iter()
            .map(|&present| {
                if present {
                    r.read(32).expect("truncated zero stream")
                } else {
                    0
                }
            })
            .collect();
        words_to_bytes(&words)
    }

    fn compressed_bits(&self, line: &[u8]) -> usize {
        let words = line_words(line);
        words.len() + 32 * words.iter().filter(|&&w| w != 0).count()
    }
}

/// Baseline: an FPC-style per-word pattern codec. Each word carries a 3-bit
/// tag selecting one of: zero, 4-bit sign-extended, 8-bit sign-extended,
/// 16-bit sign-extended, 16-bit zero-extended (halfword), or verbatim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FpcCodec;

impl FpcCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        FpcCodec
    }

    fn classify(word: u32) -> (u32, u32) {
        let s = word as i32;
        if word == 0 {
            (0, 0)
        } else if (-8..8).contains(&s) {
            (1, 4)
        } else if (-128..128).contains(&s) {
            (2, 8)
        } else if (-32768..32768).contains(&s) {
            (3, 16)
        } else if word <= 0xFFFF {
            (4, 16)
        } else {
            (5, 32)
        }
    }
}

impl LineCodec for FpcCodec {
    fn name(&self) -> &'static str {
        "fpc"
    }

    fn compress(&self, line: &[u8]) -> Vec<u8> {
        let words = line_words(line);
        let mut w = BitWriter::new();
        for &word in &words {
            let (tag, width) = Self::classify(word);
            w.write(tag, 3);
            if width > 0 {
                w.write(
                    word & (if width == 32 {
                        u32::MAX
                    } else {
                        (1 << width) - 1
                    }),
                    width,
                );
            }
        }
        w.into_bytes()
    }

    fn decompress(&self, data: &[u8], line_len: usize) -> Vec<u8> {
        let n = line_len / 4;
        let mut r = BitReader::new(data);
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = r.read(3).expect("truncated fpc stream");
            let word = match tag {
                0 => 0,
                1 => ((r.read(4).expect("truncated") as i32) << 28 >> 28) as u32,
                2 => ((r.read(8).expect("truncated") as i32) << 24 >> 24) as u32,
                3 => ((r.read(16).expect("truncated") as i32) << 16 >> 16) as u32,
                4 => r.read(16).expect("truncated"),
                _ => r.read(32).expect("truncated"),
            };
            words.push(word);
        }
        words_to_bytes(&words)
    }

    fn compressed_bits(&self, line: &[u8]) -> usize {
        line_words(line)
            .iter()
            .map(|&w| 3 + Self::classify(w).1 as usize)
            .sum()
    }
}

/// The no-compression reference codec (identity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RawCodec;

impl RawCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        RawCodec
    }
}

impl LineCodec for RawCodec {
    fn name(&self) -> &'static str {
        "raw"
    }

    fn compress(&self, line: &[u8]) -> Vec<u8> {
        let _ = line_words(line); // validate
        line.to_vec()
    }

    fn decompress(&self, data: &[u8], line_len: usize) -> Vec<u8> {
        data[..line_len].to_vec()
    }

    fn compressed_bits(&self, line: &[u8]) -> usize {
        line.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_util::{Props, Rng};

    fn line_of(words: &[u32]) -> Vec<u8> {
        words_to_bytes(words)
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i32, 1, -1, 2, -2, i32::MAX, i32::MIN, 1000, -1000] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn diff_compresses_linear_ramp_hard() {
        let words: Vec<u32> = (0..16).map(|i| 0x1000 + i * 4).collect();
        let line = line_of(&words);
        let codec = DiffCodec::new();
        // 32 + 15 × (2 + 4) = 122 bits vs 512 raw.
        assert_eq!(codec.compressed_bits(&line), 122);
        assert_eq!(codec.decompress(&codec.compress(&line), line.len()), line);
    }

    #[test]
    fn diff_handles_random_data_without_blowup_beyond_tags() {
        let words: Vec<u32> = (0..8)
            .map(|i| (i as u32).wrapping_mul(0x9E37_79B9))
            .collect();
        let line = line_of(&words);
        let codec = DiffCodec::new();
        // Worst case: 32 + 7 × 34 = 270 bits for a 256-bit line.
        assert!(codec.compressed_bits(&line) <= 270);
        assert_eq!(codec.decompress(&codec.compress(&line), line.len()), line);
    }

    #[test]
    fn zero_codec_kills_zero_lines() {
        let line = line_of(&[0; 8]);
        let codec = ZeroRunCodec::new();
        assert_eq!(codec.compressed_bits(&line), 8); // just the mask
        assert_eq!(codec.decompress(&codec.compress(&line), line.len()), line);
    }

    #[test]
    fn fpc_tags_cover_patterns() {
        assert_eq!(FpcCodec::classify(0), (0, 0));
        assert_eq!(FpcCodec::classify(7), (1, 4));
        assert_eq!(FpcCodec::classify(0xFFFF_FFFF), (1, 4)); // -1
        assert_eq!(FpcCodec::classify(100), (2, 8));
        assert_eq!(FpcCodec::classify(30_000), (3, 16));
        assert_eq!(FpcCodec::classify(0xABCD), (4, 16));
        assert_eq!(FpcCodec::classify(0xDEAD_BEEF), (5, 32));
    }

    #[test]
    fn raw_codec_is_identity() {
        let line = line_of(&[1, 2, 3, 4]);
        let codec = RawCodec::new();
        assert_eq!(codec.compress(&line), line);
        assert_eq!(codec.compressed_bits(&line), line.len() * 8);
    }

    #[test]
    fn codec_names_are_distinct() {
        let names = [
            DiffCodec::new().name(),
            ZeroRunCodec::new().name(),
            FpcCodec::new().name(),
            RawCodec::new().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn odd_line_length_panics() {
        DiffCodec::new().compress(&[1, 2, 3]);
    }

    fn arb_line(rng: &mut Rng) -> Vec<u8> {
        let len = rng.gen_range(1..=32usize);
        let words: Vec<u32> = (0..len).map(|_| rng.next_u32()).collect();
        words_to_bytes(&words)
    }

    /// Lines with realistic structure: smooth deltas, repeated values, zeros.
    fn structured_line(rng: &mut Rng) -> Vec<u8> {
        let mut words = vec![rng.next_u32()];
        for _ in 0..rng.gen_range(1..=31usize) {
            let prev = *words.last().expect("non-empty");
            let delta = rng.gen_range(-512i32..512);
            words.push(prev.wrapping_add(delta as u32));
        }
        words_to_bytes(&words)
    }

    #[test]
    fn diff_roundtrips() {
        Props::new("diff codec roundtrips arbitrary lines").run(|rng| {
            let line = arb_line(rng);
            let c = DiffCodec::new();
            assert_eq!(c.decompress(&c.compress(&line), line.len()), line);
        });
    }

    #[test]
    fn zero_roundtrips() {
        Props::new("zero-run codec roundtrips arbitrary lines").run(|rng| {
            let line = arb_line(rng);
            let c = ZeroRunCodec::new();
            assert_eq!(c.decompress(&c.compress(&line), line.len()), line);
        });
    }

    #[test]
    fn fpc_roundtrips() {
        Props::new("fpc codec roundtrips arbitrary lines").run(|rng| {
            let line = arb_line(rng);
            let c = FpcCodec::new();
            assert_eq!(c.decompress(&c.compress(&line), line.len()), line);
        });
    }

    #[test]
    fn compressed_bits_matches_compress_len() {
        Props::new("compressed_bits agrees with compress()").run(|rng| {
            let line = arb_line(rng);
            for c in [
                &DiffCodec::new() as &dyn LineCodec,
                &ZeroRunCodec::new(),
                &FpcCodec::new(),
            ] {
                let bits = c.compressed_bits(&line);
                let bytes = c.compress(&line).len();
                // compress() pads to whole bytes.
                assert_eq!(bytes, bits.div_ceil(8), "codec {}", c.name());
            }
        });
    }

    #[test]
    fn diff_beats_raw_on_structured_data() {
        Props::new("diff codec never expands structured lines").run(|rng| {
            let line = structured_line(rng);
            let c = DiffCodec::new();
            assert!(c.compressed_bits(&line) <= line.len() * 8);
        });
    }
}
