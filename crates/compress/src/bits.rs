//! MSB-first bit-level writer and reader used by the line codecs.

/// Writes bit fields MSB-first into a growing byte buffer.
///
/// ```
/// use lpmem_compress::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write(0b101, 3);
/// w.write(0xFF, 8);
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read(3), Some(0b101));
/// assert_eq!(r.read(8), Some(0xFF));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the trailing byte (0..8).
    used: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `width` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 32.
    pub fn write(&mut self, value: u32, width: u32) {
        assert!((1..=32).contains(&width), "width must be in 1..=32");
        for i in (0..width).rev() {
            let bit = (value >> i) & 1;
            if self.used == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (bit as u8) << (7 - self.used);
            self.used = (self.used + 1) % 8;
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
            - if self.used == 0 {
                0
            } else {
                (8 - self.used) as usize
            }
    }

    /// Finishes, returning the zero-padded byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bit fields MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `width` bits; returns `None` when the buffer is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 32.
    pub fn read(&mut self, width: u32) -> Option<u32> {
        assert!((1..=32).contains(&width), "width must be in 1..=32");
        if self.pos + width as usize > self.bytes.len() * 8 {
            return None;
        }
        let mut out = 0u32;
        for _ in 0..width {
            let byte = self.bytes[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | bit as u32;
            self.pos += 1;
        }
        Some(out)
    }

    /// Bits consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_util::Props;

    #[test]
    fn single_bits_pack_msb_first() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        w.write(0, 1);
        w.write(1, 1);
        assert_eq!(w.bit_len(), 3);
        assert_eq!(w.into_bytes(), vec![0b1010_0000]);
    }

    #[test]
    fn cross_byte_fields() {
        let mut w = BitWriter::new();
        w.write(0x3FF, 10); // ten ones
        w.write(0, 2);
        w.write(0xF, 4);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(10), Some(0x3FF));
        assert_eq!(r.read(2), Some(0));
        assert_eq!(r.read(4), Some(0xF));
    }

    #[test]
    fn full_width_words() {
        let mut w = BitWriter::new();
        w.write(0xDEAD_BEEF, 32);
        let bytes = w.into_bytes();
        assert_eq!(BitReader::new(&bytes).read(32), Some(0xDEAD_BEEF));
    }

    #[test]
    fn reader_returns_none_at_end() {
        let mut w = BitWriter::new();
        w.write(5, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), Some(5));
        // The byte is padded to 8 bits, so 5 more bits exist but not 9.
        assert!(r.read(9).is_none());
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=32")]
    fn zero_width_write_panics() {
        BitWriter::new().write(0, 0);
    }

    #[test]
    fn roundtrip_arbitrary_fields() {
        Props::new("bit fields roundtrip through writer and reader").run(|rng| {
            let len = rng.gen_range(0..64usize);
            let fields: Vec<(u32, u32)> = (0..len)
                .map(|_| (rng.next_u32(), rng.gen_range(1..=32u32)))
                .collect();
            let mut w = BitWriter::new();
            for &(v, width) in &fields {
                w.write(v, width);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &(v, width) in &fields {
                let mask = if width == 32 {
                    u32::MAX
                } else {
                    (1 << width) - 1
                };
                assert_eq!(r.read(width), Some(v & mask));
            }
        });
    }

    #[test]
    fn bit_len_matches_sum_of_widths() {
        Props::new("bit length equals the sum of written widths").run(|rng| {
            let len = rng.gen_range(0..64usize);
            let widths: Vec<u32> = (0..len).map(|_| rng.gen_range(1..=32u32)).collect();
            let mut w = BitWriter::new();
            for &width in &widths {
                w.write(0, width);
            }
            assert_eq!(w.bit_len() as u32, widths.iter().sum::<u32>());
        });
    }
}
