//! Energy-driven data compression for cache write-backs: the core
//! contribution of DATE 2003 1B.2 (*"A New Algorithm for Energy-Driven Data
//! Compression in VLIW Embedded Processors"*, Macii, Macii, Crudo, Zafalon).
//!
//! The scheme: when the D-cache evicts a dirty line, the line is compressed
//! by a small hardware unit **before** the off-chip write; if the encoded
//! size clears a threshold, the memory write moves fewer bus beats (and the
//! later refill reads fewer beats back). Off-chip beats cost three orders of
//! magnitude more than the codec's switching energy, so even modest
//! compression ratios save total system energy.
//!
//! The crate provides:
//!
//! * [`DiffCodec`] — the paper's differential scheme (word deltas, zigzag,
//!   variable-width packing), bit-exact with a decoder;
//! * [`ZeroRunCodec`], [`FpcCodec`] — baseline codecs for ablation **A2**;
//! * [`analyze_writebacks`] — per-line traffic statistics for a codec;
//! * [`CompressedMemoryModel`] — tracks which lines live compressed in
//!   memory so refills are credited too.
//!
//! # Example
//!
//! ```
//! use lpmem_compress::{DiffCodec, LineCodec};
//!
//! // A smooth signal buffer: near-constant deltas compress well.
//! let words: Vec<u32> = (0..8).map(|i| 1000 + 3 * i).collect();
//! let line: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
//! let codec = DiffCodec::new();
//! let encoded = codec.compress(&line);
//! assert!(encoded.len() < line.len() / 2);
//! assert_eq!(codec.decompress(&encoded, line.len()), line);
//! ```

#![warn(missing_docs)]

pub mod bits;
pub mod codec;
pub mod model;

pub use bits::{BitReader, BitWriter};
pub use codec::{DiffCodec, FpcCodec, LineCodec, RawCodec, ZeroRunCodec};
pub use model::{analyze_writebacks, CompressedMemoryModel, WritebackAnalysis};
