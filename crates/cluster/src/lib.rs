//! Address clustering: the core contribution of DATE 2003 1B.1
//! (*"Improving the Efficiency of Memory Partitioning by Address
//! Clustering"*, A. Macii, E. Macii, M. Poncino).
//!
//! Memory partitioning exploits *spatial* locality of the address profile:
//! it can only isolate hot traffic into a small bank when the hot blocks are
//! **contiguous**. Real applications scatter their hot blocks (a hot loop
//! table here, a hot stack page there), so the partitioner is forced to
//! either build large banks around the scatter or burn banks on isolated
//! blocks. Address clustering fixes the profile before partitioning: it
//! computes a **bijective block remapping** that packs hot, temporally
//! correlated blocks next to each other, at the cost of a small relocation
//! table in the address path.
//!
//! The pipeline ([`cluster_blocks`]):
//!
//! 1. per-block heat from the [`BlockProfile`];
//! 2. optional co-access **affinity graph** from the trace
//!    ([`AffinityGraph`]): blocks touched within a sliding window attract;
//! 3. greedy agglomerative merging of the strongest affinity edges
//!    (bounded cluster size);
//! 4. clusters ordered by aggregate heat; blocks *within* a cluster laid
//!    out as a greedy affinity chain (hottest first, then strongest
//!    co-access to the previous block), falling back to heat order when no
//!    trace is available;
//! 5. the resulting [`AddressMap`] is applied to the profile and handed to
//!    `lpmem_partition::optimal_partition`.
//!
//! # Example
//!
//! ```
//! use lpmem_cluster::{cluster_blocks, ClusterConfig};
//! use lpmem_trace::BlockProfile;
//!
//! // Hot blocks 0 and 5 are maximally scattered.
//! let profile = BlockProfile::from_counts(0, 1024, vec![900, 1, 1, 1, 1, 950])?;
//! let map = cluster_blocks(&profile, None, &ClusterConfig::default());
//! let remapped = map.apply(&profile)?;
//! // After clustering the two hot blocks are adjacent at the front.
//! assert_eq!(&remapped.counts()[0..2], &[950, 900]);
//! # Ok::<(), lpmem_trace::TraceError>(())
//! ```

#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};

use lpmem_energy::{Energy, Technology};
use lpmem_trace::{BlockProfile, Trace, TraceError};

/// Clustering objective (ablation **A1** in `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Objective {
    /// Sort blocks by access frequency only.
    FrequencyOnly,
    /// Merge temporally correlated blocks first, then order by frequency
    /// (the full 1B.1 scheme).
    #[default]
    FrequencyAffinity,
}

/// Parameters of [`cluster_blocks`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClusterConfig {
    /// Sliding co-access window (in events) used to build the affinity
    /// graph.
    pub window: usize,
    /// Maximum blocks per cluster (bounds the agglomeration).
    pub max_cluster_blocks: usize,
    /// The clustering objective.
    pub objective: Objective,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            window: 16,
            max_cluster_blocks: 8,
            objective: Objective::default(),
        }
    }
}

/// A bijective remapping of profile blocks: the output of clustering and
/// the model of the relocation table inserted in the address path.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AddressMap {
    /// `forward[old_block] = new_block`.
    forward: Vec<usize>,
    /// `inverse[new_block] = old_block`.
    inverse: Vec<usize>,
    base: u64,
    block_size: u64,
}

impl AddressMap {
    /// Builds a map from a forward permutation (`forward[old] = new`).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] when `forward` is not a
    /// permutation or `block_size` is not a power of two.
    pub fn new(forward: Vec<usize>, base: u64, block_size: u64) -> Result<Self, TraceError> {
        if block_size == 0 || !block_size.is_power_of_two() {
            return Err(TraceError::InvalidBlockSize(block_size));
        }
        let n = forward.len();
        let mut inverse = vec![usize::MAX; n];
        for (old, &new) in forward.iter().enumerate() {
            if new >= n || inverse[new] != usize::MAX {
                return Err(TraceError::InvalidParameter(
                    "forward map is not a permutation",
                ));
            }
            inverse[new] = old;
        }
        Ok(AddressMap {
            forward,
            inverse,
            base,
            block_size,
        })
    }

    /// The identity map over `n` blocks.
    pub fn identity(n: usize, base: u64, block_size: u64) -> Self {
        AddressMap {
            forward: (0..n).collect(),
            inverse: (0..n).collect(),
            base,
            block_size,
        }
    }

    /// Number of mapped blocks.
    pub fn num_blocks(&self) -> usize {
        self.forward.len()
    }

    /// `forward[old] = new` view.
    pub fn forward(&self) -> &[usize] {
        &self.forward
    }

    /// `inverse[new] = old` view.
    pub fn inverse(&self) -> &[usize] {
        &self.inverse
    }

    /// Remaps one address; addresses outside the mapped range pass through
    /// unchanged (the relocation table only covers the profiled region).
    pub fn remap_addr(&self, addr: u64) -> u64 {
        let shift = self.block_size.trailing_zeros();
        if addr < self.base {
            return addr;
        }
        let block = ((addr - self.base) >> shift) as usize;
        if block >= self.forward.len() {
            return addr;
        }
        let offset = addr & (self.block_size - 1);
        self.base + ((self.forward[block] as u64) << shift) + offset
    }

    /// Applies the map to a profile (`new[new_idx] = old[inverse[new_idx]]`).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] when the profile's block
    /// count differs from the map's.
    pub fn apply(&self, profile: &BlockProfile) -> Result<BlockProfile, TraceError> {
        profile.permuted(&self.inverse)
    }

    /// `true` when the map moves no block.
    pub fn is_identity(&self) -> bool {
        self.forward.iter().enumerate().all(|(i, &f)| i == f)
    }

    /// Size of the hardware relocation table in bits: one entry per block,
    /// `ceil(log2(n))` bits each.
    pub fn table_bits(&self) -> u64 {
        let n = self.num_blocks() as u64;
        if n <= 1 {
            return 0;
        }
        let entry_bits = 64 - (n - 1).leading_zeros() as u64;
        n * entry_bits
    }

    /// Silicon area of the relocation table in mm²: its bits at SRAM cell
    /// density, with a 50% control/routing overhead.
    pub fn table_area_mm2(&self, tech: &Technology) -> f64 {
        if self.is_identity() {
            0.0
        } else {
            self.table_bits() as f64 * tech.sram_cell_um2 * 1.5 * 1e-6
        }
    }

    /// Energy overhead of performing `accesses` relocation-table lookups.
    ///
    /// An identity map needs no table, so its overhead is zero.
    pub fn lookup_energy(&self, accesses: u64, tech: &Technology) -> Energy {
        if self.is_identity() {
            Energy::ZERO
        } else {
            Energy::from_pj(tech.relocation_lookup_pj * accesses as f64)
        }
    }
}

/// Co-access affinity graph over profile blocks.
///
/// Edge weight `w(a, b)` counts how often blocks `a` and `b` were accessed
/// within [`ClusterConfig::window`] events of each other.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AffinityGraph {
    weights: HashMap<(usize, usize), u64>,
}

impl AffinityGraph {
    /// Builds the graph from a trace at the profile's block granularity.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidBlockSize`] for a bad block size or
    /// [`TraceError::InvalidParameter`] for a zero window.
    pub fn from_trace(
        trace: &Trace,
        base: u64,
        block_size: u64,
        num_blocks: usize,
        window: usize,
    ) -> Result<Self, TraceError> {
        if window == 0 {
            return Err(TraceError::InvalidParameter("window must be positive"));
        }
        if block_size == 0 || !block_size.is_power_of_two() {
            return Err(TraceError::InvalidBlockSize(block_size));
        }
        let shift = block_size.trailing_zeros();
        let mut weights: HashMap<(usize, usize), u64> = HashMap::new();
        let mut recent: VecDeque<usize> = VecDeque::with_capacity(window);
        for ev in trace {
            if ev.addr < base {
                continue;
            }
            let block = ((ev.addr - base) >> shift) as usize;
            if block >= num_blocks {
                continue;
            }
            for &other in &recent {
                if other != block {
                    let key = (block.min(other), block.max(other));
                    *weights.entry(key).or_insert(0) += 1;
                }
            }
            if recent.len() == window {
                recent.pop_front();
            }
            recent.push_back(block);
        }
        Ok(AffinityGraph { weights })
    }

    /// Edge weight between two blocks (symmetric).
    pub fn weight(&self, a: usize, b: usize) -> u64 {
        self.weights
            .get(&(a.min(b), a.max(b)))
            .copied()
            .unwrap_or(0)
    }

    /// Edges sorted by descending weight.
    pub fn edges_by_weight(&self) -> Vec<(usize, usize, u64)> {
        let mut edges: Vec<(usize, usize, u64)> =
            self.weights.iter().map(|(&(a, b), &w)| (a, b, w)).collect();
        edges.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        edges
    }

    /// Number of non-zero edges.
    pub fn num_edges(&self) -> usize {
        self.weights.len()
    }
}

/// Union-find with cluster-size tracking.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Merges unless the combined size would exceed `max_size`; returns
    /// whether the merge happened.
    fn union_bounded(&mut self, a: usize, b: usize, max_size: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] + self.size[rb] > max_size {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

/// Runs the full clustering pipeline, producing the block remap.
///
/// `trace` supplies the co-access affinity; pass `None` (or use
/// [`Objective::FrequencyOnly`]) to cluster on frequency alone.
pub fn cluster_blocks(
    profile: &BlockProfile,
    trace: Option<&Trace>,
    cfg: &ClusterConfig,
) -> AddressMap {
    let n = profile.num_blocks();
    let counts = profile.counts();

    // 1. Group blocks into clusters.
    let mut uf = UnionFind::new(n);
    let mut graph = None;
    if cfg.objective == Objective::FrequencyAffinity {
        if let Some(trace) = trace {
            if let Ok(g) = AffinityGraph::from_trace(
                trace,
                profile.base(),
                profile.block_size(),
                n,
                cfg.window,
            ) {
                for (a, b, _w) in g.edges_by_weight() {
                    uf.union_bounded(a, b, cfg.max_cluster_blocks.max(1));
                }
                graph = Some(g);
            }
        }
    }

    // 2. Collect clusters and their aggregate heat.
    let mut clusters: HashMap<usize, Vec<usize>> = HashMap::new();
    for block in 0..n {
        clusters.entry(uf.find(block)).or_default().push(block);
    }
    let mut ordered: Vec<(u64, Vec<usize>)> = clusters
        .into_values()
        .map(|mut blocks| {
            match &graph {
                // With affinity information, order blocks inside the
                // cluster as a greedy nearest-neighbour chain: start from
                // the hottest block and repeatedly append the unplaced
                // block most strongly co-accessed with the last placed
                // one. This keeps strongly-correlated sub-groups adjacent
                // even when heat is uniform, so a later bank cut can
                // separate them and let each sub-group's bank sleep.
                Some(g) if blocks.len() > 2 => {
                    blocks.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));
                    let mut chain = vec![blocks[0]];
                    let mut rest: Vec<usize> = blocks[1..].to_vec();
                    while !rest.is_empty() {
                        let last = *chain.last().expect("chain starts non-empty");
                        let (pos, _) = rest
                            .iter()
                            .enumerate()
                            .max_by_key(|&(_, &b)| {
                                (g.weight(last, b), counts[b], std::cmp::Reverse(b))
                            })
                            .expect("rest is non-empty");
                        chain.push(rest.swap_remove(pos));
                    }
                    blocks = chain;
                }
                // Frequency objective: hottest first (tiebreak on index).
                _ => blocks.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b))),
            }
            let heat: u64 = blocks.iter().map(|&b| counts[b]).sum();
            (heat, blocks)
        })
        .collect();
    // Hottest cluster first; deterministic tiebreak on first block index.
    ordered.sort_by(|x, y| y.0.cmp(&x.0).then(x.1[0].cmp(&y.1[0])));

    // 3. Lay clusters out contiguously from address zero.
    let mut forward = vec![0usize; n];
    let mut next = 0usize;
    for (_, blocks) in ordered {
        for block in blocks {
            forward[block] = next;
            next += 1;
        }
    }
    debug_assert_eq!(next, n);
    AddressMap::new(forward, profile.base(), profile.block_size())
        .expect("construction yields a permutation by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_trace::MemEvent;

    fn profile(counts: Vec<u64>) -> BlockProfile {
        BlockProfile::from_counts(0, 1024, counts).unwrap()
    }

    #[test]
    fn identity_map_properties() {
        let m = AddressMap::identity(8, 0, 1024);
        assert!(m.is_identity());
        assert_eq!(m.remap_addr(0x1234), 0x1234);
        assert_eq!(m.lookup_energy(1000, &Technology::tech180()), Energy::ZERO);
    }

    #[test]
    fn map_validates_permutation() {
        assert!(AddressMap::new(vec![0, 0, 1], 0, 1024).is_err());
        assert!(AddressMap::new(vec![0, 3, 1], 0, 1024).is_err());
        assert!(AddressMap::new(vec![2, 0, 1], 0, 1000).is_err());
        assert!(AddressMap::new(vec![2, 0, 1], 0, 1024).is_ok());
    }

    #[test]
    fn remap_addr_moves_blocks_keeps_offsets() {
        let m = AddressMap::new(vec![1, 0], 0x1000, 0x100).unwrap();
        assert_eq!(m.remap_addr(0x1004), 0x1104); // block 0 -> slot 1
        assert_eq!(m.remap_addr(0x11F0), 0x10F0); // block 1 -> slot 0
        assert_eq!(m.remap_addr(0x0FFF), 0x0FFF); // below base: untouched
        assert_eq!(m.remap_addr(0x2000), 0x2000); // beyond range: untouched
    }

    #[test]
    fn apply_matches_remap_semantics() {
        // forward = [2, 0, 1]: old0 -> slot2, old1 -> slot0, old2 -> slot1.
        let m = AddressMap::new(vec![2, 0, 1], 0, 1024).unwrap();
        let p = profile(vec![10, 20, 30]);
        let q = m.apply(&p).unwrap();
        assert_eq!(q.counts(), &[20, 30, 10]);
        assert_eq!(q.total_accesses(), p.total_accesses());
    }

    #[test]
    fn frequency_only_sorts_by_heat() {
        let p = profile(vec![5, 100, 1, 50]);
        let cfg = ClusterConfig {
            objective: Objective::FrequencyOnly,
            ..Default::default()
        };
        let map = cluster_blocks(&p, None, &cfg);
        let q = map.apply(&p).unwrap();
        assert_eq!(q.counts(), &[100, 50, 5, 1]);
    }

    #[test]
    fn clustering_concentrates_scattered_hot_blocks() {
        let p = profile(vec![900, 1, 1, 1, 1, 950]);
        let map = cluster_blocks(&p, None, &ClusterConfig::default());
        let q = map.apply(&p).unwrap();
        assert_eq!(&q.counts()[0..2], &[950, 900]);
        assert!(q.scatter() < p.scatter());
    }

    #[test]
    fn affinity_graph_counts_co_accesses() {
        // Alternating blocks 0 and 2 within a window of 2.
        let t: Trace = vec![
            MemEvent::read(0),
            MemEvent::read(2048),
            MemEvent::read(0),
            MemEvent::read(2048),
        ]
        .into();
        let g = AffinityGraph::from_trace(&t, 0, 1024, 3, 2).unwrap();
        assert_eq!(g.weight(0, 2), 3);
        assert_eq!(g.weight(0, 1), 0);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn affinity_keeps_correlated_blocks_together() {
        // Blocks 0 and 4 are hot AND co-accessed; blocks 2 is hot but
        // independent. Affinity clustering should pack {0,4} adjacent.
        let mut evs = Vec::new();
        for _ in 0..200 {
            evs.push(MemEvent::read(0)); // block 0
            evs.push(MemEvent::read(4 * 1024)); // block 4
        }
        for _ in 0..150 {
            evs.push(MemEvent::read(2 * 1024)); // block 2
        }
        let t: Trace = evs.into();
        let p = BlockProfile::from_trace(&t, 1024).unwrap();
        let map = cluster_blocks(&p, Some(&t), &ClusterConfig::default());
        let new0 = map.forward()[0];
        let new4 = map.forward()[4];
        assert_eq!(
            new0.abs_diff(new4),
            1,
            "co-accessed blocks must be adjacent"
        );
    }

    #[test]
    fn cluster_size_bound_is_respected() {
        // All five blocks co-accessed; bound clusters to 2.
        let mut evs = Vec::new();
        for i in 0..500u64 {
            evs.push(MemEvent::read((i % 5) * 1024));
        }
        let t: Trace = evs.into();
        let p = BlockProfile::from_trace(&t, 1024).unwrap();
        let cfg = ClusterConfig {
            max_cluster_blocks: 2,
            ..Default::default()
        };
        let map = cluster_blocks(&p, Some(&t), &cfg);
        // The map must still be a permutation over all 5 blocks.
        let mut seen = [false; 5];
        for &f in map.forward() {
            assert!(!seen[f]);
            seen[f] = true;
        }
    }

    #[test]
    fn table_bits_scale_with_blocks() {
        assert_eq!(AddressMap::identity(1, 0, 1024).table_bits(), 0);
        assert_eq!(AddressMap::identity(2, 0, 1024).table_bits(), 2); // 2 × 1 bit
        assert_eq!(AddressMap::identity(64, 0, 1024).table_bits(), 64 * 6);
    }

    #[test]
    fn table_area_is_zero_for_identity_small_otherwise() {
        let tech = Technology::tech180();
        assert_eq!(AddressMap::identity(64, 0, 1024).table_area_mm2(&tech), 0.0);
        let m = AddressMap::new(vec![1, 0], 0, 1024).unwrap();
        let a = m.table_area_mm2(&tech);
        assert!(a > 0.0 && a < 0.001, "relocation tables are tiny: {a}");
    }

    #[test]
    fn non_identity_map_charges_lookup_energy() {
        let m = AddressMap::new(vec![1, 0], 0, 1024).unwrap();
        let tech = Technology::tech180();
        let e = m.lookup_energy(100, &tech);
        assert!((e.as_pj() - 100.0 * tech.relocation_lookup_pj).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_clustering_beats_plain_partitioning() {
        use lpmem_partition::{optimal_partition, PartitionCost};
        // Scattered hot set: the headline scenario of T1.
        let counts: Vec<u64> = (0..32)
            .map(|i| if i % 7 == 0 { 5_000 } else { 10 })
            .collect();
        let p = BlockProfile::from_counts(0, 4096, counts).unwrap();
        let tech = Technology::tech180();
        let cost = PartitionCost::new(&tech);
        let (_, plain) = optimal_partition(&p, 8, &cost);
        let map = cluster_blocks(&p, None, &ClusterConfig::default());
        let q = map.apply(&p).unwrap();
        let (_, clustered) = optimal_partition(&q, 8, &cost);
        let overhead = map.lookup_energy(p.total_accesses(), &tech);
        assert!(
            clustered.total() + overhead < plain.total(),
            "clustered {} + {} vs plain {}",
            clustered.total(),
            overhead,
            plain.total()
        );
    }
}
