//! Streaming (online) trace statistics with bounded state.
//!
//! Every analysis in this module consumes events one at a time from any
//! `Iterator<Item = MemEvent>` and never materializes the trace, so a
//! simulation can process arbitrarily long event streams — or millions of
//! per-device streams in a fleet sweep — in memory bounded by the
//! workload's *footprint* (distinct blocks touched) and the analysis
//! window, never by the event count.
//!
//! The materialized entry points ([`StackDistanceHistogram::from_trace`],
//! [`LocalityReport::from_trace`], [`WorkingSetReport::from_trace`]) are
//! thin wrappers over these streaming forms (or independent twins kept
//! equal by differential property tests), so both paths always agree —
//! exactly, not approximately.
//!
//! * [`StreamingStackDistance`] — online LRU stack distances, exactly
//!   equal to the offline Fenwick algorithm, in `O(footprint + window)`
//!   state (markers deeper than the clamp depth are evicted — their
//!   distances are clamped identically either way).
//! * [`StreamingLocality`] — online [`LocalityReport`].
//! * [`StreamingWorkingSet`] — distinct blocks per fixed event window.
//! * [`Reservoir`] — seeded uniform reservoir sampling of a stream.

use std::collections::{HashMap, HashSet};

use lpmem_util::Rng;

use crate::stats::{LocalityReport, StackDistanceHistogram};
use crate::{checked_log2, MemEvent, Trace, TraceError};

/// A Fenwick (binary-indexed) tree over `n` slots used to count live
/// timestamps for the O(log n) stack-distance update.
#[derive(Debug, Clone)]
pub(crate) struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    pub(crate) fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at index `i` (0-based).
    pub(crate) fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of values in `0..=i` (0-based inclusive prefix sum).
    pub(crate) fn prefix_sum(&self, i: usize) -> u64 {
        let mut i = i + 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Index of the first slot with a non-zero count (the oldest live
    /// timestamp), or `None` when the tree is empty.
    fn first_live(&self) -> Option<usize> {
        let total = self.prefix_sum(self.tree.len() - 2);
        if total == 0 {
            return None;
        }
        // Binary-lift descent: find the smallest index whose prefix sum
        // reaches 1.
        let mut pos = 0usize; // 1-based cursor into the tree
        let mut remaining = 1u64;
        let mut step = (self.tree.len() - 1).next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] < remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        Some(pos) // `pos` is 0-based again after the descent overshoot
    }
}

/// Marker value in the block map for a block whose timestamp was evicted
/// from the precise window: any reuse of it is at least
/// [`StackDistanceHistogram::MAX_TRACKED`] deep, which the histogram
/// clamps anyway.
const DEEP: u64 = u64::MAX;

/// Initial timestamp capacity; grows on demand (amortized O(1) per event).
const INITIAL_CAPACITY: usize = 512;

/// Online LRU stack-distance computation, exactly equal to
/// [`StackDistanceHistogram::from_trace`] on the same event stream.
///
/// State is `O(footprint + window)`: one map entry per distinct block ever
/// touched (the footprint — the offline algorithm needs the same map) plus
/// a Fenwick tree over at most [`StackDistanceHistogram::MAX_TRACKED`]
/// *live* timestamps. Timestamps are renumbered in place when the clock
/// reaches the tree capacity, and markers deeper than the clamp depth are
/// evicted eagerly: once a block has `MAX_TRACKED` more-recent distinct
/// blocks above it, its eventual reuse distance is clamped no matter what,
/// so precise tracking stops paying.
///
/// ```
/// use lpmem_trace::{MemEvent, StackDistanceHistogram, StreamingStackDistance, Trace};
///
/// let events = [0u64, 64, 128, 64, 0].map(MemEvent::read);
/// let mut stream = StreamingStackDistance::new(64)?;
/// for ev in events {
///     stream.push(ev);
/// }
/// let materialized =
///     StackDistanceHistogram::from_trace(&events.into_iter().collect::<Trace>(), 64)?;
/// assert_eq!(stream.finish(), materialized);
/// # Ok::<(), lpmem_trace::TraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingStackDistance {
    shift: u32,
    fen: Fenwick,
    /// `slot_block[t]` is the block whose marker was placed at timestamp
    /// `t`; stale once the block moves (checked against `last_pos`).
    slot_block: Vec<u64>,
    /// Block -> current timestamp slot, or [`DEEP`].
    last_pos: HashMap<u64, u64>,
    /// Number of live (precise) markers.
    live: usize,
    /// Next timestamp slot.
    clock: usize,
    capacity: usize,
    hist: Vec<u64>,
    cold: u64,
    total: u64,
}

impl StreamingStackDistance {
    /// Creates a streaming computation at the given block size.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidBlockSize`] for a bad block size.
    pub fn new(block_size: u64) -> Result<Self, TraceError> {
        let shift = checked_log2(block_size)?;
        Ok(StreamingStackDistance {
            shift,
            fen: Fenwick::new(INITIAL_CAPACITY),
            slot_block: vec![0; INITIAL_CAPACITY],
            last_pos: HashMap::new(),
            live: 0,
            clock: 0,
            capacity: INITIAL_CAPACITY,
            hist: Vec::new(),
            cold: 0,
            total: 0,
        })
    }

    /// Feeds one event.
    pub fn push(&mut self, ev: MemEvent) {
        let b = ev.block(self.shift);
        self.total += 1;
        match self.last_pos.get(&b).copied() {
            None => self.cold += 1,
            Some(DEEP) => {
                // Evicted marker: the reuse distance is provably at least
                // MAX_TRACKED, the exact clamp the offline form applies.
                self.record(StackDistanceHistogram::MAX_TRACKED);
            }
            Some(p) => {
                // Distinct blocks touched strictly since p: live markers
                // above p. `live` counts all live markers (every one is at
                // a timestamp <= clock-1), prefix_sum(p) those at <= p.
                let d = (self.live as u64 - self.fen.prefix_sum(p as usize)) as usize;
                self.record(d.min(StackDistanceHistogram::MAX_TRACKED));
                self.fen.add(p as usize, -1);
                self.live -= 1;
            }
        }
        if self.clock == self.capacity {
            self.compact();
        }
        let t = self.clock;
        self.fen.add(t, 1);
        self.slot_block[t] = b;
        self.last_pos.insert(b, t as u64);
        self.live += 1;
        self.clock += 1;
        if self.live > StackDistanceHistogram::MAX_TRACKED {
            self.evict_oldest();
        }
    }

    fn record(&mut self, d: usize) {
        if self.hist.len() <= d {
            self.hist.resize(d + 1, 0);
        }
        self.hist[d] += 1;
    }

    /// Renumbers live timestamps to `0..live`, growing the tree when it is
    /// more than half full. Liveness of a slot is decided by a Fenwick
    /// point query (the marker count at that slot), so no hash-order
    /// iteration is involved — slots are walked in ascending timestamp
    /// order.
    fn compact(&mut self) {
        if self.live * 2 > self.capacity {
            self.capacity *= 2;
        }
        let mut live_blocks: Vec<u64> = Vec::with_capacity(self.live);
        let mut below = 0;
        for t in 0..self.clock {
            let upto = self.fen.prefix_sum(t);
            if upto > below {
                live_blocks.push(self.slot_block[t]);
            }
            below = upto;
        }
        debug_assert_eq!(live_blocks.len(), self.live);
        self.fen = Fenwick::new(self.capacity);
        self.slot_block = vec![0; self.capacity];
        for (new_t, &b) in live_blocks.iter().enumerate() {
            self.fen.add(new_t, 1);
            self.slot_block[new_t] = b;
            self.last_pos.insert(b, new_t as u64);
        }
        self.clock = self.live;
    }

    /// Drops the oldest live marker: its block has `MAX_TRACKED` distinct
    /// blocks above it, and that count never shrinks before its next
    /// access, so the eventual distance is clamped either way.
    fn evict_oldest(&mut self) {
        let pos = self.fen.first_live().expect("live markers exist");
        self.fen.add(pos, -1);
        self.live -= 1;
        let b = self.slot_block[pos];
        self.last_pos.insert(b, DEEP);
    }

    /// Events processed so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// First-touch accesses so far (the block footprint).
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Finishes the stream and returns the histogram — exactly the value
    /// [`StackDistanceHistogram::from_trace`] computes for the same
    /// events.
    pub fn finish(self) -> StackDistanceHistogram {
        StackDistanceHistogram::from_parts(self.hist, self.cold, self.total)
    }
}

/// Online form of [`LocalityReport`]: spatial locality, footprint, and
/// mean stack distance computed incrementally.
#[derive(Debug, Clone)]
pub struct StreamingLocality {
    spatial_window: u64,
    prev_addr: Option<u64>,
    near: usize,
    events: usize,
    sdh: StreamingStackDistance,
}

impl StreamingLocality {
    /// Creates a streaming locality analysis; `spatial_window` is the
    /// distance (bytes) under which two consecutive accesses count as
    /// spatially local.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] when `spatial_window` is
    /// zero.
    pub fn new(spatial_window: u64) -> Result<Self, TraceError> {
        if spatial_window == 0 {
            return Err(TraceError::InvalidParameter("spatial_window must be > 0"));
        }
        Ok(StreamingLocality {
            spatial_window,
            prev_addr: None,
            near: 0,
            events: 0,
            sdh: StreamingStackDistance::new(64)?,
        })
    }

    /// Feeds one event.
    pub fn push(&mut self, ev: MemEvent) {
        if let Some(prev) = self.prev_addr {
            if prev.abs_diff(ev.addr) <= self.spatial_window {
                self.near += 1;
            }
        }
        self.prev_addr = Some(ev.addr);
        self.events += 1;
        self.sdh.push(ev);
    }

    /// Events processed so far.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Finishes the stream — exactly the value
    /// [`LocalityReport::from_trace`] computes for the same events.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyTrace`] when no events were pushed.
    pub fn finish(self) -> Result<LocalityReport, TraceError> {
        if self.events == 0 {
            return Err(TraceError::EmptyTrace);
        }
        let spatial_locality = if self.events > 1 {
            self.near as f64 / (self.events - 1) as f64
        } else {
            1.0
        };
        let footprint_blocks = self.sdh.cold() as usize;
        let sdh = self.sdh.finish();
        Ok(LocalityReport {
            spatial_locality,
            spatial_window: self.spatial_window,
            mean_stack_distance: sdh.mean_distance(),
            footprint_blocks,
            events: self.events,
        })
    }
}

/// Working-set summary: distinct blocks touched per fixed-size,
/// non-overlapping event window.
///
/// All counters are integers, so reports fold and merge exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkingSetReport {
    /// Block granularity in bytes.
    pub block_size: u64,
    /// Events per window.
    pub window: usize,
    /// Complete windows observed.
    pub windows: u64,
    /// Summed distinct-block counts over complete windows.
    pub distinct_sum: u64,
    /// Largest distinct-block count of any complete window.
    pub max_distinct: u64,
    /// Events in the trailing partial window.
    pub tail_events: usize,
    /// Distinct blocks in the trailing partial window.
    pub tail_distinct: u64,
}

impl WorkingSetReport {
    /// Mean distinct blocks per complete window, or `None` when no window
    /// completed.
    pub fn mean_distinct(&self) -> Option<f64> {
        if self.windows == 0 {
            None
        } else {
            Some(self.distinct_sum as f64 / self.windows as f64)
        }
    }

    /// Computes the report from a materialized trace — an independent
    /// (chunk-based) implementation kept exactly equal to the streaming
    /// form by differential property tests.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidBlockSize`] for a bad block size and
    /// [`TraceError::InvalidParameter`] when `window` is zero.
    pub fn from_trace(trace: &Trace, block_size: u64, window: usize) -> Result<Self, TraceError> {
        let shift = checked_log2(block_size)?;
        if window == 0 {
            return Err(TraceError::InvalidParameter("window must be > 0"));
        }
        let mut report = WorkingSetReport {
            block_size,
            window,
            windows: 0,
            distinct_sum: 0,
            max_distinct: 0,
            tail_events: 0,
            tail_distinct: 0,
        };
        for chunk in trace.events().chunks(window) {
            let distinct = chunk
                .iter()
                .map(|e| e.block(shift))
                .collect::<std::collections::BTreeSet<u64>>()
                .len() as u64;
            if chunk.len() == window {
                report.windows += 1;
                report.distinct_sum += distinct;
                report.max_distinct = report.max_distinct.max(distinct);
            } else {
                report.tail_events = chunk.len();
                report.tail_distinct = distinct;
            }
        }
        Ok(report)
    }
}

/// Online working-set tracking in `O(window)` state: one hash set of the
/// current window's blocks, cleared at each window boundary.
#[derive(Debug, Clone)]
pub struct StreamingWorkingSet {
    shift: u32,
    block_size: u64,
    window: usize,
    current: HashSet<u64>,
    filled: usize,
    windows: u64,
    distinct_sum: u64,
    max_distinct: u64,
}

impl StreamingWorkingSet {
    /// Creates a tracker counting distinct `block_size`-byte blocks per
    /// `window` events.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidBlockSize`] for a bad block size and
    /// [`TraceError::InvalidParameter`] when `window` is zero.
    pub fn new(block_size: u64, window: usize) -> Result<Self, TraceError> {
        let shift = checked_log2(block_size)?;
        if window == 0 {
            return Err(TraceError::InvalidParameter("window must be > 0"));
        }
        Ok(StreamingWorkingSet {
            shift,
            block_size,
            window,
            current: HashSet::new(),
            filled: 0,
            windows: 0,
            distinct_sum: 0,
            max_distinct: 0,
        })
    }

    /// Feeds one event.
    pub fn push(&mut self, ev: MemEvent) {
        self.current.insert(ev.block(self.shift));
        self.filled += 1;
        if self.filled == self.window {
            let distinct = self.current.len() as u64;
            self.windows += 1;
            self.distinct_sum += distinct;
            self.max_distinct = self.max_distinct.max(distinct);
            self.current.clear();
            self.filled = 0;
        }
    }

    /// Finishes the stream — exactly the value
    /// [`WorkingSetReport::from_trace`] computes for the same events.
    pub fn finish(self) -> WorkingSetReport {
        WorkingSetReport {
            block_size: self.block_size,
            window: self.window,
            windows: self.windows,
            distinct_sum: self.distinct_sum,
            max_distinct: self.max_distinct,
            tail_events: self.filled,
            tail_distinct: self.current.len() as u64,
        }
    }
}

/// Seeded uniform reservoir sampling (Algorithm R): after `n` pushes the
/// reservoir holds `min(n, capacity)` items, each of the `n` with
/// probability `capacity / n`, deterministically per seed.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    rng: Rng,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// Creates a reservoir holding up to `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir needs a positive capacity");
        Reservoir {
            capacity,
            seen: 0,
            rng: Rng::seed_from_u64(seed),
            items: Vec::with_capacity(capacity),
        }
    }

    /// Offers one item to the reservoir.
    pub fn push(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = self.rng.bounded_u64(self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Maximum number of items held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current sample (in reservoir slot order, not stream order).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the reservoir, returning the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(addrs: &[u64]) -> Trace {
        addrs.iter().map(|&a| MemEvent::read(a)).collect()
    }

    #[test]
    fn fenwick_prefix_sums() {
        let mut f = Fenwick::new(8);
        f.add(0, 1);
        f.add(3, 2);
        f.add(7, 5);
        assert_eq!(f.prefix_sum(0), 1);
        assert_eq!(f.prefix_sum(2), 1);
        assert_eq!(f.prefix_sum(3), 3);
        assert_eq!(f.prefix_sum(7), 8);
        f.add(3, -2);
        assert_eq!(f.prefix_sum(7), 6);
    }

    #[test]
    fn fenwick_first_live_finds_oldest() {
        let mut f = Fenwick::new(16);
        assert_eq!(f.first_live(), None);
        f.add(5, 1);
        f.add(11, 1);
        assert_eq!(f.first_live(), Some(5));
        f.add(5, -1);
        assert_eq!(f.first_live(), Some(11));
        f.add(0, 1);
        assert_eq!(f.first_live(), Some(0));
    }

    #[test]
    fn streaming_matches_classic_example() {
        // Blocks a b c b a -> b distance 1, a distance 2.
        let t = trace_of(&[0, 64, 128, 64, 0]);
        let mut s = StreamingStackDistance::new(64).unwrap();
        for &ev in t.events() {
            s.push(ev);
        }
        let h = s.finish();
        assert_eq!(h.cold_accesses(), 3);
        assert_eq!(h.buckets(), &[0, 1, 1]);
        assert_eq!(h, StackDistanceHistogram::from_trace(&t, 64).unwrap());
    }

    #[test]
    fn streaming_survives_compaction() {
        // Revisit a small working set across many more events than the
        // initial timestamp capacity, forcing several compactions.
        let addrs: Vec<u64> = (0..10 * INITIAL_CAPACITY as u64)
            .map(|i| (i % 7) * 64)
            .collect();
        let t = trace_of(&addrs);
        let mut s = StreamingStackDistance::new(64).unwrap();
        for &ev in t.events() {
            s.push(ev);
        }
        assert_eq!(
            s.clone().finish(),
            StackDistanceHistogram::from_trace(&t, 64).unwrap()
        );
        // State stayed bounded by the footprint, not the event count.
        assert!(s.capacity <= 4 * INITIAL_CAPACITY);
    }

    #[test]
    fn streaming_clamps_beyond_max_tracked_exactly() {
        // Two passes over more distinct blocks than MAX_TRACKED: second-pass
        // distances all clamp, exercising the eviction path. The offline
        // algorithm must agree bucket for bucket.
        let n = StackDistanceHistogram::MAX_TRACKED as u64 + 1000;
        let addrs: Vec<u64> = (0..2 * n).map(|i| (i % n) * 64).collect();
        let t = trace_of(&addrs);
        let mut s = StreamingStackDistance::new(64).unwrap();
        for &ev in t.events() {
            s.push(ev);
        }
        let streamed = s.finish();
        assert_eq!(
            streamed,
            StackDistanceHistogram::from_trace(&t, 64).unwrap()
        );
        // Every reuse is at the clamp depth.
        assert_eq!(streamed.buckets()[StackDistanceHistogram::MAX_TRACKED], n);
    }

    #[test]
    fn streaming_locality_matches_from_trace() {
        let t = trace_of(&[0, 4, 8, 100_000, 12, 8]);
        let mut s = StreamingLocality::new(64).unwrap();
        for &ev in t.events() {
            s.push(ev);
        }
        assert_eq!(
            s.finish().unwrap(),
            LocalityReport::from_trace(&t, 64).unwrap()
        );
    }

    #[test]
    fn streaming_locality_rejects_bad_input() {
        assert!(StreamingLocality::new(0).is_err());
        assert_eq!(
            StreamingLocality::new(64).unwrap().finish().unwrap_err(),
            TraceError::EmptyTrace
        );
    }

    #[test]
    fn working_set_counts_windows() {
        let t = trace_of(&[0, 64, 0, 128, 192, 256, 0]);
        let mut s = StreamingWorkingSet::new(64, 3).unwrap();
        for &ev in t.events() {
            s.push(ev);
        }
        let r = s.finish();
        // Windows: {0,64,0}=2 distinct, {128,192,256}=3; tail {0}=1.
        assert_eq!(r.windows, 2);
        assert_eq!(r.distinct_sum, 5);
        assert_eq!(r.max_distinct, 3);
        assert_eq!((r.tail_events, r.tail_distinct), (1, 1));
        assert_eq!(r, WorkingSetReport::from_trace(&t, 64, 3).unwrap());
        assert!((r.mean_distinct().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_rejects_bad_input() {
        assert!(StreamingWorkingSet::new(48, 4).is_err());
        assert!(StreamingWorkingSet::new(64, 0).is_err());
        assert!(WorkingSetReport::from_trace(&Trace::new(), 64, 0).is_err());
    }

    #[test]
    fn reservoir_is_bounded_and_deterministic() {
        let mut a = Reservoir::new(8, 7);
        let mut b = Reservoir::new(8, 7);
        for i in 0..100u32 {
            a.push(i);
            b.push(i);
        }
        assert_eq!(a.items().len(), 8);
        assert_eq!(a.seen(), 100);
        assert_eq!(a.items(), b.items());
        let mut c = Reservoir::new(8, 8);
        for i in 0..100u32 {
            c.push(i);
        }
        assert_ne!(a.items(), c.items());
    }

    #[test]
    fn reservoir_holds_everything_below_capacity() {
        let mut r = Reservoir::new(16, 3);
        for i in 0..5u32 {
            r.push(i);
        }
        assert_eq!(r.into_items(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn reservoir_rejects_zero_capacity() {
        let _ = Reservoir::<u32>::new(0, 1);
    }
}
