//! Trace events and the [`Trace`] container.

use crate::TraceError;

/// The kind of memory access an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessKind {
    /// Instruction fetch (I-side).
    InstrFetch,
    /// Data load (D-side).
    Read,
    /// Data store (D-side).
    Write,
}

impl AccessKind {
    /// Returns `true` for data-side accesses ([`Read`](Self::Read) and
    /// [`Write`](Self::Write)).
    #[inline]
    pub fn is_data(self) -> bool {
        !matches!(self, AccessKind::InstrFetch)
    }
}

/// One memory access: an address, the access kind, and the access width in
/// bytes.
///
/// Events are ordered by their position in the [`Trace`]; there is no
/// explicit timestamp because every consumer in this workspace treats the
/// trace index as logical time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemEvent {
    /// Byte address of the access.
    pub addr: u64,
    /// Fetch, read, or write.
    pub kind: AccessKind,
    /// Access width in bytes (1, 2, or 4 for TinyRISC; wider for DMA-style
    /// generators).
    pub size: u8,
    /// The data moved: the loaded/stored value for data accesses, the
    /// instruction word for fetches. Trace-only generators synthesize an
    /// address-correlated value so downstream compression studies see
    /// realistic (non-zero) payloads.
    pub value: u32,
}

impl MemEvent {
    /// Creates a data-read event of word (4-byte) width and zero value.
    #[inline]
    pub fn read(addr: u64) -> Self {
        MemEvent {
            addr,
            kind: AccessKind::Read,
            size: 4,
            value: 0,
        }
    }

    /// Creates a data-write event of word (4-byte) width and zero value.
    #[inline]
    pub fn write(addr: u64) -> Self {
        MemEvent {
            addr,
            kind: AccessKind::Write,
            size: 4,
            value: 0,
        }
    }

    /// Creates an instruction-fetch event of word (4-byte) width and zero
    /// value.
    #[inline]
    pub fn fetch(addr: u64) -> Self {
        MemEvent {
            addr,
            kind: AccessKind::InstrFetch,
            size: 4,
            value: 0,
        }
    }

    /// Returns this event carrying `value` as its data payload.
    #[inline]
    pub fn with_value(mut self, value: u32) -> Self {
        self.value = value;
        self
    }

    /// Index of the block containing this event for the given power-of-two
    /// block size expressed as `log2(block_size)`.
    pub fn block(self, block_shift: u32) -> u64 {
        self.addr >> block_shift
    }
}

/// An ordered sequence of memory accesses.
///
/// `Trace` is a thin, append-only wrapper around `Vec<MemEvent>` that adds
/// the analyses the rest of the workspace needs. It implements
/// [`FromIterator`] and [`Extend`] so generator pipelines compose with
/// iterator adapters:
///
/// ```
/// use lpmem_trace::{MemEvent, Trace};
///
/// let trace: Trace = (0..16u64).map(|i| MemEvent::read(i * 4)).collect();
/// assert_eq!(trace.len(), 16);
/// assert_eq!(trace.span(), Some((0, 60)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    events: Vec<MemEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Trace {
            events: Vec::with_capacity(n),
        }
    }

    /// Appends an event.
    #[inline]
    pub fn push(&mut self, ev: MemEvent) {
        self.events.push(ev);
    }

    /// Appends a pre-built run of events in one bulk copy.
    #[inline]
    pub fn extend_from_slice(&mut self, evs: &[MemEvent]) {
        self.events.extend_from_slice(evs);
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Immutable view of the underlying events.
    pub fn events(&self) -> &[MemEvent] {
        &self.events
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, MemEvent> {
        self.events.iter()
    }

    /// Consumes the trace, returning the underlying event vector.
    pub fn into_inner(self) -> Vec<MemEvent> {
        self.events
    }

    /// The lowest and highest addresses touched, or `None` for an empty
    /// trace.
    pub fn span(&self) -> Option<(u64, u64)> {
        let min = self.events.iter().map(|e| e.addr).min()?;
        let max = self.events.iter().map(|e| e.addr).max()?;
        Some((min, max))
    }

    /// A sub-trace containing only the events whose kind satisfies `keep`.
    pub fn filtered(&self, keep: impl Fn(AccessKind) -> bool) -> Trace {
        self.events
            .iter()
            .copied()
            .filter(|e| keep(e.kind))
            .collect()
    }

    /// A sub-trace of data-side accesses (reads and writes).
    pub fn data_only(&self) -> Trace {
        self.filtered(AccessKind::is_data)
    }

    /// A sub-trace of instruction fetches.
    pub fn fetches_only(&self) -> Trace {
        self.filtered(|k| k == AccessKind::InstrFetch)
    }

    /// Number of events of each kind: `(fetches, reads, writes)`.
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for ev in &self.events {
            match ev.kind {
                AccessKind::InstrFetch => counts.0 += 1,
                AccessKind::Read => counts.1 += 1,
                AccessKind::Write => counts.2 += 1,
            }
        }
        counts
    }

    /// Iterates over block indices for the given block size.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidBlockSize`] when `block_size` is zero or
    /// not a power of two.
    pub fn block_ids(&self, block_size: u64) -> Result<impl Iterator<Item = u64> + '_, TraceError> {
        let shift = crate::checked_log2(block_size)?;
        Ok(self.events.iter().map(move |e| e.block(shift)))
    }
}

impl FromIterator<MemEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = MemEvent>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<MemEvent> for Trace {
    fn extend<I: IntoIterator<Item = MemEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemEvent;
    type IntoIter = std::slice::Iter<'a, MemEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for Trace {
    type Item = MemEvent;
    type IntoIter = std::vec::IntoIter<MemEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl From<Vec<MemEvent>> for Trace {
    fn from(events: Vec<MemEvent>) -> Self {
        Trace { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        vec![
            MemEvent::fetch(0x100),
            MemEvent::read(0x2000),
            MemEvent::write(0x2004),
            MemEvent::fetch(0x104),
            MemEvent::read(0x2008),
        ]
        .into()
    }

    #[test]
    fn kind_counts_split_correctly() {
        assert_eq!(sample().kind_counts(), (2, 2, 1));
    }

    #[test]
    fn span_covers_min_and_max() {
        assert_eq!(sample().span(), Some((0x100, 0x2008)));
        assert_eq!(Trace::new().span(), None);
    }

    #[test]
    fn data_only_drops_fetches() {
        let d = sample().data_only();
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|e| e.kind.is_data()));
    }

    #[test]
    fn fetches_only_keeps_fetches() {
        let f = sample().fetches_only();
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|e| e.kind == AccessKind::InstrFetch));
    }

    #[test]
    fn block_ids_uses_block_size() {
        let t = sample();
        let ids: Vec<u64> = t.block_ids(0x1000).unwrap().collect();
        assert_eq!(ids, vec![0, 2, 2, 0, 2]);
    }

    #[test]
    fn block_ids_rejects_bad_size() {
        assert!(sample().block_ids(12).is_err());
    }

    #[test]
    fn trace_roundtrips_through_iterators() {
        let t = sample();
        let back: Trace = t.clone().into_iter().collect();
        assert_eq!(t, back);
    }

    #[test]
    fn extend_appends() {
        let mut t = sample();
        t.extend([MemEvent::read(0x3000)]);
        assert_eq!(t.len(), 6);
    }
}
