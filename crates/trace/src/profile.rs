//! Per-block access profiles derived from traces.
//!
//! A [`BlockProfile`] is the central data structure of the partitioning and
//! clustering flows: it folds a trace into an access-count vector over
//! fixed-size address blocks, the exact input the DATE 2003 1B.1 flow feeds
//! to its memory-partitioning engine.

use crate::{checked_log2, Trace, TraceError};

/// Access counts over fixed-size, contiguous address blocks.
///
/// Block `i` covers byte addresses `[base + i*block_size, base +
/// (i+1)*block_size)`. The profile always covers the full span of the trace
/// it was built from, so `counts` may contain zero entries for untouched
/// blocks — those matter for partitioning, because a contiguous bank must
/// still hold cold blocks that sit between hot ones (the inefficiency that
/// address clustering removes).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockProfile {
    base: u64,
    block_size: u64,
    counts: Vec<u64>,
    writes: Vec<u64>,
}

impl BlockProfile {
    /// Builds a profile from a trace with the given power-of-two block size.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidBlockSize`] for a bad block size and
    /// [`TraceError::EmptyTrace`] for an empty trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use lpmem_trace::{BlockProfile, MemEvent, Trace};
    ///
    /// let trace: Trace = vec![MemEvent::read(0x0), MemEvent::write(0x1000)].into();
    /// let p = BlockProfile::from_trace(&trace, 0x1000)?;
    /// assert_eq!(p.num_blocks(), 2);
    /// assert_eq!(p.counts(), &[1, 1]);
    /// # Ok::<(), lpmem_trace::TraceError>(())
    /// ```
    pub fn from_trace(trace: &Trace, block_size: u64) -> Result<Self, TraceError> {
        let shift = checked_log2(block_size)?;
        let (lo, hi) = trace.span().ok_or(TraceError::EmptyTrace)?;
        let first = lo >> shift;
        let last = hi >> shift;
        let n = usize::try_from(last - first + 1)
            .map_err(|_| TraceError::InvalidParameter("trace span too large for block size"))?;
        let mut counts = vec![0u64; n];
        let mut writes = vec![0u64; n];
        for ev in trace {
            let idx = ((ev.addr >> shift) - first) as usize;
            counts[idx] += 1;
            if ev.kind == crate::AccessKind::Write {
                writes[idx] += 1;
            }
        }
        Ok(BlockProfile {
            base: first << shift,
            block_size,
            counts,
            writes,
        })
    }

    /// Builds a profile directly from per-block counts (used by generators
    /// and tests). Write counts are taken to be zero.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidBlockSize`] for a bad block size and
    /// [`TraceError::EmptyTrace`] when `counts` is empty.
    pub fn from_counts(base: u64, block_size: u64, counts: Vec<u64>) -> Result<Self, TraceError> {
        checked_log2(block_size)?;
        if counts.is_empty() {
            return Err(TraceError::EmptyTrace);
        }
        let writes = vec![0; counts.len()];
        Ok(BlockProfile {
            base,
            block_size,
            counts,
            writes,
        })
    }

    /// First byte address covered by the profile.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Block size in bytes (a power of two).
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Number of blocks covered (including untouched blocks).
    pub fn num_blocks(&self) -> usize {
        self.counts.len()
    }

    /// Per-block total access counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-block write counts (a subset of [`counts`](Self::counts)).
    pub fn write_counts(&self) -> &[u64] {
        &self.writes
    }

    /// Total number of accesses in the profile.
    pub fn total_accesses(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of blocks needed to cover `coverage` (in `0.0..=1.0`) of all
    /// accesses, taking blocks from hottest to coldest.
    ///
    /// Low values indicate a concentrated (peaky) profile; values near the
    /// coverage itself indicate uniform traffic.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is not within `0.0..=1.0`.
    pub fn hot_fraction(&self, coverage: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage must be in [0, 1]"
        );
        let total = self.total_accesses();
        if total == 0 {
            return 0.0;
        }
        let mut sorted = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let target = (coverage * total as f64).ceil() as u64;
        let mut acc = 0u64;
        let mut used = 0usize;
        for c in sorted {
            if acc >= target {
                break;
            }
            acc += c;
            used += 1;
        }
        used as f64 / self.num_blocks() as f64
    }

    /// Shannon entropy (bits) of the per-block access distribution.
    ///
    /// `0.0` means all traffic hits one block; `log2(num_blocks)` means
    /// perfectly uniform traffic.
    pub fn entropy_bits(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            return 0.0;
        }
        let total = total as f64;
        -self
            .counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// A *spatial scatter* score in `0.0..=1.0`: the mean normalized index
    /// distance between consecutive hot blocks (blocks above mean heat).
    ///
    /// Profiles whose hot blocks are adjacent score near `0`; hot blocks
    /// strewn across the address map score near `1`. This is the property
    /// address clustering improves before partitioning.
    pub fn scatter(&self) -> f64 {
        let n = self.num_blocks();
        if n < 2 {
            return 0.0;
        }
        let mean = self.total_accesses() as f64 / n as f64;
        let hot: Vec<usize> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c as f64 > mean)
            .map(|(i, _)| i)
            .collect();
        if hot.len() < 2 {
            return 0.0;
        }
        let gaps: f64 = hot.windows(2).map(|w| (w[1] - w[0]) as f64 - 1.0).sum();
        let max_gaps = (n - hot.len()) as f64;
        if max_gaps == 0.0 {
            0.0
        } else {
            gaps / max_gaps
        }
    }

    /// Returns a new profile with blocks reordered by the permutation `perm`,
    /// where `perm[new_index] = old_index`.
    ///
    /// This is how an address-clustering remap is applied before
    /// partitioning.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] when `perm` is not a
    /// permutation of `0..num_blocks()`.
    pub fn permuted(&self, perm: &[usize]) -> Result<BlockProfile, TraceError> {
        let n = self.num_blocks();
        if perm.len() != n {
            return Err(TraceError::InvalidParameter("permutation length mismatch"));
        }
        let mut seen = vec![false; n];
        for &p in perm {
            if p >= n || seen[p] {
                return Err(TraceError::InvalidParameter("not a permutation"));
            }
            seen[p] = true;
        }
        Ok(BlockProfile {
            base: self.base,
            block_size: self.block_size,
            counts: perm.iter().map(|&p| self.counts[p]).collect(),
            writes: perm.iter().map(|&p| self.writes[p]).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemEvent;

    fn profile(counts: Vec<u64>) -> BlockProfile {
        BlockProfile::from_counts(0, 4096, counts).unwrap()
    }

    #[test]
    fn from_trace_counts_reads_and_writes() {
        let trace: Trace = vec![
            MemEvent::read(0x0000),
            MemEvent::write(0x0004),
            MemEvent::read(0x2000),
            MemEvent::write(0x2004),
            MemEvent::write(0x2008),
        ]
        .into();
        let p = BlockProfile::from_trace(&trace, 0x1000).unwrap();
        assert_eq!(p.counts(), &[2, 0, 3]);
        assert_eq!(p.write_counts(), &[1, 0, 2]);
        assert_eq!(p.total_accesses(), 5);
    }

    #[test]
    fn from_trace_base_is_block_aligned() {
        let trace: Trace = vec![MemEvent::read(0x1234)].into();
        let p = BlockProfile::from_trace(&trace, 0x1000).unwrap();
        assert_eq!(p.base(), 0x1000);
        assert_eq!(p.num_blocks(), 1);
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert_eq!(
            BlockProfile::from_trace(&Trace::new(), 4096).unwrap_err(),
            TraceError::EmptyTrace
        );
    }

    #[test]
    fn entropy_of_single_hot_block_is_zero() {
        assert_eq!(profile(vec![100, 0, 0, 0]).entropy_bits(), 0.0);
    }

    #[test]
    fn entropy_of_uniform_profile_is_log2_n() {
        let e = profile(vec![10, 10, 10, 10]).entropy_bits();
        assert!((e - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hot_fraction_concentrated_vs_uniform() {
        let peaky = profile(vec![97, 1, 1, 1]);
        let flat = profile(vec![25, 25, 25, 25]);
        assert!(peaky.hot_fraction(0.9) < flat.hot_fraction(0.9));
    }

    #[test]
    fn scatter_is_zero_for_adjacent_hot_blocks() {
        let p = profile(vec![90, 90, 1, 1, 1, 1]);
        assert_eq!(p.scatter(), 0.0);
    }

    #[test]
    fn scatter_is_high_for_spread_hot_blocks() {
        let p = profile(vec![90, 1, 1, 1, 1, 90]);
        assert!(p.scatter() > 0.9);
    }

    #[test]
    fn permuted_applies_permutation() {
        let p = profile(vec![1, 2, 3]);
        let q = p.permuted(&[2, 0, 1]).unwrap();
        assert_eq!(q.counts(), &[3, 1, 2]);
    }

    #[test]
    fn permuted_rejects_non_permutations() {
        let p = profile(vec![1, 2, 3]);
        assert!(p.permuted(&[0, 0, 1]).is_err());
        assert!(p.permuted(&[0, 1]).is_err());
        assert!(p.permuted(&[0, 1, 3]).is_err());
    }

    #[test]
    fn permutation_preserves_total() {
        let p = profile(vec![5, 7, 11, 13]);
        let q = p.permuted(&[3, 1, 0, 2]).unwrap();
        assert_eq!(p.total_accesses(), q.total_accesses());
    }
}
