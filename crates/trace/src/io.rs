//! Plain-text trace serialization.
//!
//! One event per line: `<kind> <hex addr> <size> <hex value>`, where kind
//! is `F` (fetch), `R` (read), or `W` (write). Lines starting with `#` and
//! blank lines are ignored. The format is deliberately trivial so traces
//! interchange with awk/python tooling and other simulators.
//!
//! ```
//! use lpmem_trace::{MemEvent, Trace};
//!
//! let trace: Trace = vec![MemEvent::read(0x2000).with_value(7)].into();
//! let text = lpmem_trace::io::to_text(&trace);
//! assert_eq!(lpmem_trace::io::from_text(&text)?, trace);
//! # Ok::<(), lpmem_trace::TraceError>(())
//! ```

use std::io::{BufRead, Write};

use crate::{AccessKind, MemEvent, Trace, TraceError};

fn kind_char(kind: AccessKind) -> char {
    match kind {
        AccessKind::InstrFetch => 'F',
        AccessKind::Read => 'R',
        AccessKind::Write => 'W',
    }
}

/// Renders a trace to its text form.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 24);
    for ev in trace {
        out.push_str(&format!(
            "{} {:x} {} {:x}\n",
            kind_char(ev.kind),
            ev.addr,
            ev.size,
            ev.value
        ));
    }
    out
}

/// Writes a trace to any [`Write`] sink.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_text<W: Write>(trace: &Trace, mut sink: W) -> std::io::Result<()> {
    sink.write_all(to_text(trace).as_bytes())
}

/// Parses the text form back into a trace.
///
/// # Errors
///
/// Returns [`TraceError::InvalidParameter`] on any malformed line.
pub fn from_text(text: &str) -> Result<Trace, TraceError> {
    let mut trace = Trace::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        trace.push(parse_line(line)?);
    }
    Ok(trace)
}

/// Reads a trace from any [`BufRead`] source.
///
/// # Errors
///
/// Returns [`TraceError::InvalidParameter`] on malformed lines or I/O
/// failure.
pub fn read_text<R: BufRead>(mut source: R) -> Result<Trace, TraceError> {
    let mut text = String::new();
    source
        .read_to_string(&mut text)
        .map_err(|_| TraceError::InvalidParameter("trace input is not readable text"))?;
    from_text(&text)
}

fn parse_line(line: &str) -> Result<MemEvent, TraceError> {
    let bad = || TraceError::InvalidParameter("malformed trace line");
    let mut parts = line.split_whitespace();
    let kind = match parts.next().ok_or_else(bad)? {
        "F" | "f" => AccessKind::InstrFetch,
        "R" | "r" => AccessKind::Read,
        "W" | "w" => AccessKind::Write,
        _ => return Err(bad()),
    };
    let addr = u64::from_str_radix(parts.next().ok_or_else(bad)?, 16).map_err(|_| bad())?;
    let size: u8 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let value = u32::from_str_radix(parts.next().ok_or_else(bad)?, 16).map_err(|_| bad())?;
    if parts.next().is_some() {
        return Err(bad());
    }
    Ok(MemEvent {
        addr,
        kind,
        size,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_util::Props;

    fn sample() -> Trace {
        vec![
            MemEvent::fetch(0x100).with_value(0xdead_beef),
            MemEvent::read(0x2000).with_value(42),
            MemEvent {
                addr: 0x2004,
                kind: AccessKind::Write,
                size: 1,
                value: 0xAB,
            },
        ]
        .into()
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        assert_eq!(from_text(&to_text(&t)).unwrap(), t);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header\n\nR 100 4 0\n  # indented comment\nW 104 4 7\n";
        let t = from_text(text).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "X 100 4 0",
            "R zz 4 0",
            "R 100",
            "R 100 4 0 extra",
            "R 100 four 0",
        ] {
            assert!(from_text(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn io_adapters_work() {
        let t = sample();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        let back = read_text(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn arbitrary_traces_roundtrip() {
        Props::new("arbitrary traces roundtrip through text").run(|rng| {
            let len = rng.gen_range(0..64usize);
            let t: Trace = (0..len)
                .map(|_| MemEvent {
                    addr: rng.next_u64(),
                    kind: match rng.gen_range(0..3u8) {
                        0 => AccessKind::InstrFetch,
                        1 => AccessKind::Read,
                        _ => AccessKind::Write,
                    },
                    size: *rng.choose(&[1u8, 2, 4]).expect("non-empty"),
                    value: rng.next_u32(),
                })
                .collect();
            assert_eq!(from_text(&to_text(&t)).unwrap(), t);
        });
    }
}
