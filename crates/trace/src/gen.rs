//! Parametric synthetic trace generators.
//!
//! These generators substitute for the proprietary workloads of the original
//! DATE 2003 evaluations (embedded applications on ARM7, MediaBench/Ptolemy
//! programs): each produces a deterministic, seedable stream of
//! [`MemEvent`]s with a controlled locality structure.
//!
//! * [`HotColdGen`] — a hot working set *scattered* across the address map;
//!   the workload class where address clustering pays off most.
//! * [`StridedGen`] — loop-nest array sweeps (FIR/matmul-style traffic).
//! * [`MarkovGen`] — phase-structured traffic switching between regions.
//! * [`PointerChaseGen`] — low-locality pointer chasing (worst case).

use lpmem_util::Rng;

use crate::{AccessKind, MemEvent};

/// Deterministic, mildly compressible payload for a synthesized access:
/// a smooth function of the word index plus a small address-derived jitter.
fn synth_value(addr: u64) -> u32 {
    let word = (addr / 4) as u32;
    word.wrapping_mul(12)
        .wrapping_add((word.wrapping_mul(0x9E37_79B9)) >> 27)
}

fn kind_for(rng: &mut Rng, write_ratio: f64) -> AccessKind {
    if rng.gen_bool(write_ratio) {
        AccessKind::Write
    } else {
        AccessKind::Read
    }
}

/// Generator with a scattered hot set: `num_hot` hot blocks spread evenly
/// over `span` bytes receive `hot_prob` of all accesses; the rest hit cold
/// blocks uniformly.
///
/// ```
/// use lpmem_trace::{gen::HotColdGen, Trace};
///
/// let t: Trace = HotColdGen::new(0x1_0000, 4, 0.95).seed(1).events(1000).collect();
/// assert_eq!(t.len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct HotColdGen {
    span: u64,
    num_hot: usize,
    hot_prob: f64,
    write_ratio: f64,
    block_size: u64,
    seed: u64,
}

impl HotColdGen {
    /// Creates a generator over `span` bytes with `num_hot` hot blocks
    /// receiving a `hot_prob` fraction of traffic.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero, `num_hot` is zero, or `hot_prob` is outside
    /// `0.0..=1.0`.
    pub fn new(span: u64, num_hot: usize, hot_prob: f64) -> Self {
        assert!(span > 0, "span must be positive");
        assert!(num_hot > 0, "need at least one hot block");
        assert!(
            (0.0..=1.0).contains(&hot_prob),
            "hot_prob must be in [0, 1]"
        );
        HotColdGen {
            span,
            num_hot,
            hot_prob,
            write_ratio: 0.3,
            block_size: 1024,
            seed: 0,
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fraction of data accesses that are writes (default 0.3).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `0.0..=1.0`.
    pub fn write_ratio(mut self, ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&ratio));
        self.write_ratio = ratio;
        self
    }

    /// Sets the hot-block granularity in bytes (default 1024).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds the span.
    pub fn block_size(mut self, size: u64) -> Self {
        assert!(size > 0 && size <= self.span);
        self.block_size = size;
        self
    }

    /// Returns an iterator producing exactly `n` events.
    pub fn events(self, n: usize) -> HotColdIter {
        let blocks = (self.span / self.block_size).max(1);
        // Spread hot blocks evenly (and therefore *scattered*) over the span.
        let num_hot = (self.num_hot as u64).min(blocks) as usize;
        let hot_blocks: Vec<u64> = (0..num_hot)
            .map(|i| (i as u64 * blocks) / num_hot as u64)
            .collect();
        let rng = Rng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        HotColdIter {
            cfg: self,
            hot_blocks,
            blocks,
            rng,
            remaining: n,
        }
    }
}

/// Iterator produced by [`HotColdGen::events`].
#[derive(Debug)]
pub struct HotColdIter {
    cfg: HotColdGen,
    hot_blocks: Vec<u64>,
    blocks: u64,
    rng: Rng,
    remaining: usize,
}

impl Iterator for HotColdIter {
    type Item = MemEvent;

    fn next(&mut self) -> Option<MemEvent> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let block = if self.rng.gen_bool(self.cfg.hot_prob) {
            self.hot_blocks[self.rng.gen_range(0..self.hot_blocks.len())]
        } else {
            self.rng.gen_range(0..self.blocks)
        };
        let offset = self.rng.gen_range(0..self.cfg.block_size / 4) * 4;
        let addr = block * self.cfg.block_size + offset;
        let kind = kind_for(&mut self.rng, self.cfg.write_ratio);
        Some(MemEvent {
            addr,
            kind,
            size: 4,
            value: synth_value(addr),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for HotColdIter {}

/// Loop-nest generator: repeated strided sweeps over an array, the dominant
/// traffic pattern of FIR/matmul-style kernels.
#[derive(Debug, Clone)]
pub struct StridedGen {
    base: u64,
    array_bytes: u64,
    stride: u64,
    passes: usize,
    write_every: usize,
}

impl StridedGen {
    /// Sweeps `array_bytes` starting at `base` with the given `stride`
    /// (bytes), `passes` times.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or `array_bytes < stride`.
    pub fn new(base: u64, array_bytes: u64, stride: u64, passes: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(
            array_bytes >= stride,
            "array must hold at least one element"
        );
        StridedGen {
            base,
            array_bytes,
            stride,
            passes,
            write_every: 0,
        }
    }

    /// Makes every `k`-th access a write (0 disables writes; default 0).
    pub fn write_every(mut self, k: usize) -> Self {
        self.write_every = k;
        self
    }

    /// Returns the event iterator (`passes * floor(array/stride)` events).
    pub fn events(self) -> impl Iterator<Item = MemEvent> {
        let per_pass = (self.array_bytes / self.stride) as usize;
        let StridedGen {
            base,
            stride,
            passes,
            write_every,
            ..
        } = self;
        (0..passes)
            .flat_map(move |_| 0..per_pass)
            .enumerate()
            .map(move |(i, j)| {
                let addr = base + j as u64 * stride;
                let kind = if write_every != 0 && (i + 1) % write_every == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                MemEvent {
                    addr,
                    kind,
                    size: 4,
                    value: synth_value(addr),
                }
            })
    }
}

/// Phase-structured generator: traffic dwells in one of several regions and
/// hops between them with a fixed switch probability, imitating the
/// multi-phase behaviour of media applications.
#[derive(Debug, Clone)]
pub struct MarkovGen {
    regions: Vec<(u64, u64)>,
    switch_prob: f64,
    write_ratio: f64,
    seed: u64,
}

impl MarkovGen {
    /// Creates a generator over `regions` given as `(base, len_bytes)` pairs,
    /// switching region with probability `switch_prob` per event.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is empty, any region is empty, or `switch_prob`
    /// is outside `0.0..=1.0`.
    pub fn new(regions: Vec<(u64, u64)>, switch_prob: f64) -> Self {
        assert!(!regions.is_empty(), "need at least one region");
        assert!(
            regions.iter().all(|&(_, len)| len >= 4),
            "regions must hold a word"
        );
        assert!((0.0..=1.0).contains(&switch_prob));
        MarkovGen {
            regions,
            switch_prob,
            write_ratio: 0.25,
            seed: 0,
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the write fraction (default 0.25).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `0.0..=1.0`.
    pub fn write_ratio(mut self, ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&ratio));
        self.write_ratio = ratio;
        self
    }

    /// Returns an iterator producing exactly `n` events.
    pub fn events(self, n: usize) -> MarkovIter {
        MarkovIter {
            rng: Rng::seed_from_u64(self.seed ^ 0x517c_c1b7_2722_0a95),
            cursor: 0,
            region: 0,
            cfg: self,
            remaining: n,
        }
    }
}

/// Iterator produced by [`MarkovGen::events`].
#[derive(Debug)]
pub struct MarkovIter {
    cfg: MarkovGen,
    rng: Rng,
    region: usize,
    cursor: u64,
    remaining: usize,
}

impl Iterator for MarkovIter {
    type Item = MemEvent;

    fn next(&mut self) -> Option<MemEvent> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.rng.gen_bool(self.cfg.switch_prob) {
            self.region = self.rng.gen_range(0..self.cfg.regions.len());
            self.cursor = 0;
        }
        let (base, len) = self.cfg.regions[self.region];
        let words = len / 4;
        let addr = base + (self.cursor % words) * 4;
        self.cursor += 1;
        let kind = kind_for(&mut self.rng, self.cfg.write_ratio);
        Some(MemEvent {
            addr,
            kind,
            size: 4,
            value: synth_value(addr),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for MarkovIter {}

/// Pointer-chasing generator: a deterministic pseudo-random walk over a
/// region, producing near-zero spatial locality. Useful as a pessimistic
/// baseline workload.
#[derive(Debug, Clone)]
pub struct PointerChaseGen {
    base: u64,
    len: u64,
    seed: u64,
}

impl PointerChaseGen {
    /// Creates a chase over `len` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `len < 8`.
    pub fn new(base: u64, len: u64) -> Self {
        assert!(len >= 8, "region too small to chase");
        PointerChaseGen { base, len, seed: 0 }
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns an iterator producing exactly `n` read events.
    pub fn events(self, n: usize) -> impl Iterator<Item = MemEvent> {
        let mut rng = Rng::seed_from_u64(self.seed ^ 0x2545_f491_4f6c_dd1d);
        let words = self.len / 4;
        let base = self.base;
        (0..n).map(move |_| {
            let addr = base + rng.gen_range(0..words) * 4;
            MemEvent::read(addr).with_value(synth_value(addr))
        })
    }
}

/// Phase-structured generator with **scattered per-phase working sets**:
/// phase `p` owns the blocks `{p, p + P, p + 2P, …}` (interleaved with the
/// other phases' blocks in the address map) and execution dwells in one
/// phase for `dwell` events before moving to the next.
///
/// All blocks receive identical traffic, so frequency-based clustering
/// cannot distinguish them — only *temporal* affinity reveals that each
/// phase's blocks belong together. This is the workload class that
/// separates the two clustering objectives under a bank power-gating
/// model.
#[derive(Debug, Clone)]
pub struct PhaseScatterGen {
    phases: usize,
    blocks_per_phase: usize,
    block_size: u64,
    dwell: usize,
    write_ratio: f64,
    seed: u64,
}

impl PhaseScatterGen {
    /// Creates a generator with `phases` interleaved working sets of
    /// `blocks_per_phase` blocks each.
    ///
    /// # Panics
    ///
    /// Panics if `phases`, `blocks_per_phase`, or `dwell` is zero.
    pub fn new(phases: usize, blocks_per_phase: usize, dwell: usize) -> Self {
        assert!(phases > 0 && blocks_per_phase > 0 && dwell > 0);
        PhaseScatterGen {
            phases,
            blocks_per_phase,
            block_size: 2048,
            dwell,
            write_ratio: 0.25,
            seed: 0,
        }
    }

    /// Sets the block size in bytes (default 2048).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn block_size(mut self, size: u64) -> Self {
        assert!(size > 0);
        self.block_size = size;
        self
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the write fraction (default 0.25).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `0.0..=1.0`.
    pub fn write_ratio(mut self, ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&ratio));
        self.write_ratio = ratio;
        self
    }

    /// Returns an iterator producing exactly `n` events.
    pub fn events(self, n: usize) -> impl Iterator<Item = MemEvent> {
        let mut rng = Rng::seed_from_u64(self.seed ^ 0x7f4a_7c15_9e37_79b9);
        let PhaseScatterGen {
            phases,
            blocks_per_phase,
            block_size,
            dwell,
            write_ratio,
            ..
        } = self;
        (0..n).map(move |i| {
            let phase = (i / dwell) % phases;
            // Phase p owns blocks p, p+P, p+2P, ... : maximally interleaved.
            let k = rng.gen_range(0..blocks_per_phase) as u64;
            let block = phase as u64 + k * phases as u64;
            let offset = rng.gen_range(0..block_size / 4) * 4;
            let addr = block * block_size + offset;
            let kind = kind_for(&mut rng, write_ratio);
            MemEvent {
                addr,
                kind,
                size: 4,
                value: synth_value(addr),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockProfile, Trace};

    #[test]
    fn hot_cold_is_deterministic_per_seed() {
        let a: Trace = HotColdGen::new(1 << 16, 4, 0.9)
            .seed(3)
            .events(500)
            .collect();
        let b: Trace = HotColdGen::new(1 << 16, 4, 0.9)
            .seed(3)
            .events(500)
            .collect();
        let c: Trace = HotColdGen::new(1 << 16, 4, 0.9)
            .seed(4)
            .events(500)
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hot_cold_concentrates_traffic() {
        let t: Trace = HotColdGen::new(1 << 16, 4, 0.95)
            .seed(1)
            .events(20_000)
            .collect();
        let p = BlockProfile::from_trace(&t, 1024).unwrap();
        // 95% of traffic should land in roughly 4 of ~64 blocks.
        assert!(p.hot_fraction(0.9) < 0.15);
    }

    #[test]
    fn hot_cold_hot_blocks_are_scattered() {
        let t: Trace = HotColdGen::new(1 << 16, 4, 0.95)
            .seed(1)
            .events(20_000)
            .collect();
        let p = BlockProfile::from_trace(&t, 1024).unwrap();
        assert!(p.scatter() > 0.5, "scatter = {}", p.scatter());
    }

    #[test]
    fn hot_cold_respects_write_ratio_bounds() {
        let t: Trace = HotColdGen::new(1 << 12, 2, 0.9)
            .write_ratio(0.0)
            .seed(9)
            .events(100)
            .collect();
        let (_, _, w) = t.kind_counts();
        assert_eq!(w, 0);
    }

    #[test]
    fn strided_emits_expected_addresses() {
        let evs: Vec<_> = StridedGen::new(0x100, 16, 4, 2).events().collect();
        let addrs: Vec<u64> = evs.iter().map(|e| e.addr).collect();
        assert_eq!(
            addrs,
            vec![0x100, 0x104, 0x108, 0x10c, 0x100, 0x104, 0x108, 0x10c]
        );
    }

    #[test]
    fn strided_write_every_marks_writes() {
        let evs: Vec<_> = StridedGen::new(0, 16, 4, 1)
            .write_every(2)
            .events()
            .collect();
        assert_eq!(evs[0].kind, AccessKind::Read);
        assert_eq!(evs[1].kind, AccessKind::Write);
        assert_eq!(evs[3].kind, AccessKind::Write);
    }

    #[test]
    fn markov_stays_within_regions() {
        let regions = vec![(0x0, 0x100), (0x10_000, 0x100)];
        let t: Trace = MarkovGen::new(regions, 0.05)
            .seed(5)
            .events(1_000)
            .collect();
        for ev in &t {
            let in_a = ev.addr < 0x100;
            let in_b = (0x10_000..0x10_100).contains(&ev.addr);
            assert!(in_a || in_b, "address {:#x} escaped regions", ev.addr);
        }
    }

    #[test]
    fn pointer_chase_has_low_spatial_locality() {
        let t: Trace = PointerChaseGen::new(0, 1 << 20)
            .seed(2)
            .events(5_000)
            .collect();
        let r = crate::LocalityReport::from_trace(&t, 64).unwrap();
        assert!(r.spatial_locality < 0.05);
    }

    #[test]
    fn phase_scatter_interleaves_working_sets() {
        let t: Trace = PhaseScatterGen::new(4, 3, 100)
            .seed(1)
            .events(4_000)
            .collect();
        let p = BlockProfile::from_trace(&t, 2048).unwrap();
        // 4 phases x 3 blocks = 12 blocks, all with similar heat.
        assert_eq!(p.num_blocks(), 12);
        let max = *p.counts().iter().max().unwrap() as f64;
        let min = *p.counts().iter().min().unwrap() as f64;
        assert!(
            min / max > 0.5,
            "heat should be near-uniform: {:?}",
            p.counts()
        );
    }

    #[test]
    fn phase_scatter_dwells_in_phases() {
        let t: Trace = PhaseScatterGen::new(2, 2, 50).seed(2).events(200).collect();
        // Within the first dwell, only phase-0 blocks (even) are touched.
        for ev in t.events().iter().take(50) {
            assert_eq!((ev.addr / 2048) % 2, 0, "phase 0 owns even blocks");
        }
    }

    #[test]
    fn generators_produce_exact_counts() {
        assert_eq!(HotColdGen::new(4096, 1, 0.5).events(37).count(), 37);
        assert_eq!(MarkovGen::new(vec![(0, 64)], 0.1).events(41).count(), 41);
        assert_eq!(PointerChaseGen::new(0, 64).events(13).count(), 13);
    }
}
