//! Locality statistics: LRU stack distances and spatial/temporal locality
//! summaries.
//!
//! These metrics quantify the properties the DATE 2003 1B optimizations
//! exploit: partitioning exploits *spatial* locality of the address profile,
//! clustering *creates* it, and caches/compression depend on *temporal*
//! reuse.
//!
//! Both entry points here are thin wrappers over the streaming forms in
//! [`crate::stream`] — one shared implementation, so the materialized and
//! online paths cannot drift apart.

use crate::stream::{StreamingLocality, StreamingStackDistance};
use crate::{Trace, TraceError};

/// Histogram of LRU stack distances at block granularity.
///
/// Entry `hist[d]` counts accesses whose reuse distance (number of *distinct*
/// blocks touched since the previous access to the same block) is `d`,
/// clamped at [`StackDistanceHistogram::MAX_TRACKED`]. Cold (first-touch)
/// accesses are counted separately.
///
/// The cumulative histogram is exactly the miss-ratio curve of a
/// fully-associative LRU cache, so this single structure predicts hit rates
/// for every capacity at once.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StackDistanceHistogram {
    hist: Vec<u64>,
    cold: u64,
    total: u64,
}

impl StackDistanceHistogram {
    /// Distances at or above this value are clamped into the final bucket.
    pub const MAX_TRACKED: usize = 1 << 16;

    /// Computes the histogram for `trace` at the given block size by
    /// streaming the events through [`StreamingStackDistance`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidBlockSize`] for a bad block size.
    pub fn from_trace(trace: &Trace, block_size: u64) -> Result<Self, TraceError> {
        let mut stream = StreamingStackDistance::new(block_size)?;
        for &ev in trace.events() {
            stream.push(ev);
        }
        Ok(stream.finish())
    }

    /// Assembles a histogram from streaming-accumulated parts.
    pub(crate) fn from_parts(hist: Vec<u64>, cold: u64, total: u64) -> Self {
        StackDistanceHistogram { hist, cold, total }
    }

    /// Number of first-touch (cold) accesses.
    pub fn cold_accesses(&self) -> u64 {
        self.cold
    }

    /// Total accesses the histogram covers.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Raw histogram; index is the stack distance in blocks.
    pub fn buckets(&self) -> &[u64] {
        &self.hist
    }

    /// Predicted hit ratio of a fully-associative LRU cache holding
    /// `capacity_blocks` blocks.
    pub fn lru_hit_ratio(&self, capacity_blocks: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = self.hist.iter().take(capacity_blocks).sum();
        hits as f64 / self.total as f64
    }

    /// Mean stack distance over reuse (non-cold) accesses, or `None` when
    /// every access is cold.
    pub fn mean_distance(&self) -> Option<f64> {
        let reuses: u64 = self.hist.iter().sum();
        if reuses == 0 {
            return None;
        }
        let weighted: u64 = self
            .hist
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        Some(weighted as f64 / reuses as f64)
    }
}

/// Summary locality metrics for a trace.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LocalityReport {
    /// Fraction of consecutive accesses within `spatial_window` bytes of each
    /// other.
    pub spatial_locality: f64,
    /// Window used for `spatial_locality` (bytes).
    pub spatial_window: u64,
    /// Mean LRU stack distance at 64-byte blocks (None when no reuse).
    pub mean_stack_distance: Option<f64>,
    /// Number of distinct 64-byte blocks touched.
    pub footprint_blocks: usize,
    /// Total events.
    pub events: usize,
}

impl LocalityReport {
    /// Computes the report by streaming the events through
    /// [`StreamingLocality`]. `spatial_window` is the distance (bytes) under
    /// which two consecutive accesses count as spatially local.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyTrace`] for an empty trace and
    /// [`TraceError::InvalidParameter`] when `spatial_window` is zero.
    pub fn from_trace(trace: &Trace, spatial_window: u64) -> Result<Self, TraceError> {
        if trace.is_empty() {
            return Err(TraceError::EmptyTrace);
        }
        let mut stream = StreamingLocality::new(spatial_window)?;
        for &ev in trace.events() {
            stream.push(ev);
        }
        stream.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemEvent;

    fn trace_of(addrs: &[u64]) -> Trace {
        addrs.iter().map(|&a| MemEvent::read(a)).collect()
    }

    #[test]
    fn all_cold_when_no_reuse() {
        let sdh = StackDistanceHistogram::from_trace(&trace_of(&[0, 64, 128, 192]), 64).unwrap();
        assert_eq!(sdh.cold_accesses(), 4);
        assert_eq!(sdh.mean_distance(), None);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let sdh = StackDistanceHistogram::from_trace(&trace_of(&[0, 0, 0]), 64).unwrap();
        assert_eq!(sdh.cold_accesses(), 1);
        assert_eq!(sdh.buckets(), &[2]);
    }

    #[test]
    fn classic_stack_distance_example() {
        // Blocks: a b c b a  -> b reuse distance 1 (c), a reuse distance 2 (b, c).
        let sdh = StackDistanceHistogram::from_trace(&trace_of(&[0, 64, 128, 64, 0]), 64).unwrap();
        assert_eq!(sdh.cold_accesses(), 3);
        assert_eq!(sdh.buckets(), &[0, 1, 1]);
    }

    #[test]
    fn lru_hit_ratio_matches_histogram() {
        let sdh = StackDistanceHistogram::from_trace(&trace_of(&[0, 64, 128, 64, 0]), 64).unwrap();
        // Capacity 2 blocks: hits are the accesses with distance < 2 -> 1 of 5.
        assert!((sdh.lru_hit_ratio(2) - 0.2).abs() < 1e-12);
        // Capacity 3: both reuses hit -> 2 of 5.
        assert!((sdh.lru_hit_ratio(3) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_is_monotone_in_capacity() {
        let t = trace_of(&[0, 64, 128, 192, 0, 64, 128, 192, 0]);
        let sdh = StackDistanceHistogram::from_trace(&t, 64).unwrap();
        let mut prev = 0.0;
        for cap in 0..8 {
            let h = sdh.lru_hit_ratio(cap);
            assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn locality_report_sequential_is_spatially_local() {
        let t = trace_of(&[0, 4, 8, 12, 16]);
        let r = LocalityReport::from_trace(&t, 64).unwrap();
        assert_eq!(r.spatial_locality, 1.0);
        assert_eq!(r.footprint_blocks, 1);
    }

    #[test]
    fn locality_report_random_is_not_spatially_local() {
        let t = trace_of(&[0, 100_000, 5, 200_000, 10]);
        let r = LocalityReport::from_trace(&t, 64).unwrap();
        assert!(r.spatial_locality < 0.5);
    }

    #[test]
    fn locality_report_rejects_bad_input() {
        assert!(LocalityReport::from_trace(&Trace::new(), 64).is_err());
        assert!(LocalityReport::from_trace(&trace_of(&[0]), 0).is_err());
    }
}
