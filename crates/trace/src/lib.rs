//! Memory-access traces, locality statistics, and synthetic workload
//! generators.
//!
//! This crate is the foundation of the `lpmem` workspace: every optimization
//! (partitioning, address clustering, write-back compression, bus encoding,
//! data scheduling) consumes a memory-access *trace* or a *profile* derived
//! from one. Traces come either from the `lpmem-isa` TinyRISC simulator or
//! from the parametric generators in [`gen`], which substitute for the
//! proprietary ARM7/Lx-ST200 tooling of the original DATE 2003 evaluations.
//!
//! # Quick example
//!
//! ```
//! use lpmem_trace::{gen::HotColdGen, BlockProfile, Trace};
//!
//! # fn main() -> Result<(), lpmem_trace::TraceError> {
//! // A workload whose hot blocks are scattered over a 64 KiB space.
//! let trace: Trace = HotColdGen::new(0x1_0000, 8, 0.9).seed(7).events(10_000).collect();
//! let profile = BlockProfile::from_trace(&trace, 4096)?;
//! assert_eq!(profile.total_accesses(), 10_000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod gen;
pub mod io;
pub mod profile;
pub mod stats;
pub mod stream;

pub use event::{AccessKind, MemEvent, Trace};
pub use profile::BlockProfile;
pub use stats::{LocalityReport, StackDistanceHistogram};
pub use stream::{
    Reservoir, StreamingLocality, StreamingStackDistance, StreamingWorkingSet, WorkingSetReport,
};

/// Errors produced when constructing or analysing traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A block size was given that is zero or not a power of two.
    InvalidBlockSize(u64),
    /// The trace was empty where a non-empty trace is required.
    EmptyTrace,
    /// A generator or analysis parameter was outside its documented domain.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::InvalidBlockSize(s) => {
                write!(f, "block size {s} is not a non-zero power of two")
            }
            TraceError::EmptyTrace => write!(f, "trace is empty"),
            TraceError::InvalidParameter(what) => {
                write!(f, "parameter out of range: {what}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Returns `Ok(log2(size))` when `size` is a non-zero power of two.
pub(crate) fn checked_log2(size: u64) -> Result<u32, TraceError> {
    if size == 0 || !size.is_power_of_two() {
        Err(TraceError::InvalidBlockSize(size))
    } else {
        Ok(size.trailing_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_log2_accepts_powers_of_two() {
        assert_eq!(checked_log2(1), Ok(0));
        assert_eq!(checked_log2(4096), Ok(12));
    }

    #[test]
    fn checked_log2_rejects_non_powers() {
        assert_eq!(checked_log2(0), Err(TraceError::InvalidBlockSize(0)));
        assert_eq!(checked_log2(3), Err(TraceError::InvalidBlockSize(3)));
    }

    #[test]
    fn error_messages_are_lowercase_without_period() {
        let msg = TraceError::EmptyTrace.to_string();
        assert!(msg.starts_with("trace"));
        assert!(!msg.ends_with('.'));
    }
}
