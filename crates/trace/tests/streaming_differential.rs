//! Differential oracle for the streaming statistics layer: on random
//! seeds, for **every** generator family, the streaming forms must be
//! *exactly* equal to the materialized `from_trace` forms — the
//! interpreter-vs-compiled oracle pattern applied to statistics.
//!
//! The materialized wrappers delegate to the streaming code, so most of
//! these properties attack the part that can genuinely diverge: the
//! timestamp *compaction* and clamp-depth *eviction* machinery that only
//! streaming exercises (the wrapper path grows the same structures but a
//! random trace shape decides whether compaction triggers), plus the
//! independent chunk-based [`WorkingSetReport::from_trace`] twin.

use lpmem_trace::gen::{HotColdGen, MarkovGen, PhaseScatterGen, PointerChaseGen, StridedGen};
use lpmem_trace::{
    LocalityReport, StackDistanceHistogram, StreamingLocality, StreamingStackDistance,
    StreamingWorkingSet, Trace, WorkingSetReport,
};
use lpmem_util::{Props, Rng};

/// Draws a random trace from a randomly chosen generator family with
/// random (valid) parameters. Returns the family name for diagnostics.
fn random_trace(rng: &mut Rng) -> (&'static str, Trace) {
    let seed = rng.next_u64();
    let n = 1 + rng.gen_range(0..3000usize);
    match rng.gen_range(0..5u32) {
        0 => {
            let span = 1u64 << (12 + rng.gen_range(0..6u32));
            let num_hot = 1 + rng.gen_range(0..16usize);
            let hot_prob = rng.gen_f64();
            let t = HotColdGen::new(span, num_hot, hot_prob)
                .block_size(64 << rng.gen_range(0..4u64))
                .write_ratio(rng.gen_f64())
                .seed(seed)
                .events(n)
                .collect();
            ("hot-cold", t)
        }
        1 => {
            let stride = 4u64 << rng.gen_range(0..5u32);
            let array = stride * (1 + rng.gen_range(0..512u64));
            let passes = 1 + rng.gen_range(0..4usize);
            let t = StridedGen::new(rng.gen_range(0..1u64 << 16), array, stride, passes)
                .write_every(rng.gen_range(0..4usize))
                .events()
                .collect();
            ("strided", t)
        }
        2 => {
            let regions: Vec<(u64, u64)> = (0..1 + rng.gen_range(0..4u64))
                .map(|_| {
                    (
                        rng.gen_range(0..1u64 << 20),
                        4 * (1 + rng.gen_range(0..1024u64)),
                    )
                })
                .collect();
            let t = MarkovGen::new(regions, rng.gen_f64() * 0.2)
                .write_ratio(rng.gen_f64())
                .seed(seed)
                .events(n)
                .collect();
            ("phased", t)
        }
        3 => {
            let len = 8 + rng.gen_range(0..1u64 << 16);
            let t = PointerChaseGen::new(rng.gen_range(0..1u64 << 20), len)
                .seed(seed)
                .events(n)
                .collect();
            ("chase", t)
        }
        _ => {
            let phases = 1 + rng.gen_range(0..5usize);
            let bpp = 1 + rng.gen_range(0..8usize);
            let dwell = 1 + rng.gen_range(0..200usize);
            let t = PhaseScatterGen::new(phases, bpp, dwell)
                .block_size(64 << rng.gen_range(0..4u64))
                .write_ratio(rng.gen_f64())
                .seed(seed)
                .events(n)
                .collect();
            ("phase-scatter", t)
        }
    }
}

#[test]
fn streaming_stack_distance_equals_materialized() {
    Props::new("stream sdh == from_trace").cases(48).run(|rng| {
        let (name, trace) = random_trace(rng);
        let block_size = 1u64 << rng.gen_range(0..13u32);
        let mut stream = StreamingStackDistance::new(block_size).unwrap();
        for &ev in trace.events() {
            stream.push(ev);
        }
        let materialized = StackDistanceHistogram::from_trace(&trace, block_size).unwrap();
        assert_eq!(
            stream.finish(),
            materialized,
            "{name}, block_size {block_size}, {} events",
            trace.len()
        );
    });
}

#[test]
fn streaming_locality_equals_materialized() {
    Props::new("stream locality == from_trace")
        .cases(48)
        .run(|rng| {
            let (name, trace) = random_trace(rng);
            let window = 1 + rng.gen_range(0..1024u64);
            let mut stream = StreamingLocality::new(window).unwrap();
            for &ev in trace.events() {
                stream.push(ev);
            }
            let materialized = LocalityReport::from_trace(&trace, window).unwrap();
            assert_eq!(stream.finish().unwrap(), materialized, "{name}");
        });
}

#[test]
fn streaming_working_set_equals_materialized() {
    Props::new("stream working set == from_trace")
        .cases(48)
        .run(|rng| {
            let (name, trace) = random_trace(rng);
            let block_size = 1u64 << rng.gen_range(0..13u32);
            let window = 1 + rng.gen_range(0..300usize);
            let mut stream = StreamingWorkingSet::new(block_size, window).unwrap();
            for &ev in trace.events() {
                stream.push(ev);
            }
            let materialized = WorkingSetReport::from_trace(&trace, block_size, window).unwrap();
            assert_eq!(stream.finish(), materialized, "{name}");
        });
}

#[test]
fn compaction_stress_stays_exact() {
    // A small footprint revisited across far more events than the
    // streaming timestamp capacity forces many compaction cycles; the
    // result must still be bit-equal to the offline algorithm.
    Props::new("compaction is exact").cases(8).run(|rng| {
        let seed = rng.next_u64();
        let regions = vec![(0u64, 4096), (1 << 20, 2048)];
        let trace: Trace = MarkovGen::new(regions, 0.01)
            .seed(seed)
            .events(20_000)
            .collect();
        let mut stream = StreamingStackDistance::new(64).unwrap();
        for &ev in trace.events() {
            stream.push(ev);
        }
        assert_eq!(
            stream.finish(),
            StackDistanceHistogram::from_trace(&trace, 64).unwrap()
        );
    });
}

#[test]
fn clamp_depth_eviction_stays_exact() {
    // More distinct blocks than MAX_TRACKED: the streaming form must
    // evict markers past the clamp depth yet still match the offline
    // histogram, whose distances are clamped to the same depth.
    let blocks = StackDistanceHistogram::MAX_TRACKED as u64 + 1024;
    let trace: Trace = StridedGen::new(0, blocks * 64, 64, 2).events().collect();
    let mut stream = StreamingStackDistance::new(64).unwrap();
    for &ev in trace.events() {
        stream.push(ev);
    }
    let streamed = stream.finish();
    let materialized = StackDistanceHistogram::from_trace(&trace, 64).unwrap();
    assert_eq!(streamed, materialized);
    // Every second-pass access sits exactly in the clamp bucket.
    assert_eq!(
        streamed.buckets()[StackDistanceHistogram::MAX_TRACKED],
        blocks
    );
    assert_eq!(streamed.cold_accesses(), blocks);
}
