//! Reservoir-sampling properties: fixed-seed determinism, sample-size
//! bounds, and inclusion-probability sanity via plain counting bounds (no
//! chi-square machinery — a 5-sigma binomial interval is enough to catch
//! any real bias).

use std::collections::BTreeSet;

use lpmem_trace::Reservoir;
use lpmem_util::Props;

#[test]
fn same_seed_same_sample_different_seed_different_stream() {
    let fill = |seed: u64| {
        let mut r = Reservoir::new(8, seed);
        for i in 0..500u32 {
            r.push(i);
        }
        r.into_items()
    };
    assert_eq!(fill(42), fill(42));
    assert_ne!(fill(42), fill(43));
}

#[test]
fn sample_size_is_min_of_seen_and_capacity() {
    Props::new("reservoir size bound").cases(64).run(|rng| {
        let cap = 1 + rng.gen_range(0..32usize);
        let n = rng.gen_range(0..500u32);
        let mut r = Reservoir::new(cap, rng.next_u64());
        for i in 0..n {
            r.push(i);
        }
        assert_eq!(r.seen(), u64::from(n));
        assert_eq!(r.items().len(), cap.min(n as usize));
        // Distinct inputs stay distinct: no slot is double-filled.
        let unique: BTreeSet<u32> = r.items().iter().copied().collect();
        assert_eq!(unique.len(), r.items().len());
        // Every sampled item was actually pushed.
        assert!(r.items().iter().all(|&x| x < n));
    });
}

#[test]
fn below_capacity_the_sample_is_the_stream() {
    let mut r = Reservoir::new(100, 7);
    for i in 0..60u32 {
        r.push(i);
    }
    assert_eq!(r.into_items(), (0..60).collect::<Vec<u32>>());
}

#[test]
fn inclusion_probability_is_uniform_within_counting_bounds() {
    // k = 8 of n = 64: every item should be kept with probability 1/8.
    // Over 2000 independent seeds the inclusion count of any fixed item
    // is Binomial(2000, 1/8): mean 250, sd ~14.8. A +/-75 (≈5 sigma)
    // interval is wide enough to never flake yet tight enough to catch
    // position bias (early items under naive replacement would sit far
    // outside it, as would late items under no replacement: 2000 or 0).
    const K: usize = 8;
    const N: u32 = 64;
    const RUNS: u64 = 2000;
    let mut included = [0u32; N as usize];
    for seed in 0..RUNS {
        let mut r = Reservoir::new(K, seed);
        for i in 0..N {
            r.push(i);
        }
        for &item in r.items() {
            included[item as usize] += 1;
        }
    }
    let expected = RUNS as f64 * K as f64 / f64::from(N);
    for (item, &count) in included.iter().enumerate() {
        assert!(
            (f64::from(count) - expected).abs() <= 75.0,
            "item {item} included {count} times, expected ~{expected}"
        );
    }
    // Counting cross-check: total inclusions are exactly RUNS * K.
    assert_eq!(
        included.iter().map(|&c| u64::from(c)).sum::<u64>(),
        RUNS * K as u64
    );
}
