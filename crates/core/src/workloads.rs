//! Named workload suites used by the experiment harness and examples.

use lpmem_isa::{Backend, Kernel, KernelRun, Machine};
use lpmem_mem::FlatMemory;
use lpmem_trace::gen::{HotColdGen, MarkovGen};
use lpmem_trace::Trace;

use crate::FlowError;

/// Runs the full TinyRISC kernel suite at default scales.
///
/// # Errors
///
/// Propagates kernel execution errors (never expected: the kernels are
/// self-verifying).
pub fn kernel_suite(seed: u64) -> Result<Vec<KernelRun>, FlowError> {
    Kernel::ALL
        .iter()
        .map(|&k| k.run(k.default_scale(), seed).map_err(FlowError::from))
        .collect()
}

/// Runs a kernel and returns its trace together with the program's initial
/// memory image (the state a replay cache must start from).
///
/// # Errors
///
/// Propagates kernel execution errors.
pub fn kernel_trace_and_image(
    kernel: Kernel,
    scale: u32,
    seed: u64,
) -> Result<(Trace, FlatMemory), FlowError> {
    let program = kernel.program(scale, seed);
    let mut machine = Machine::new(&program);
    let result = machine.run_with(Backend::Compiled, 200_000_000)?;
    let mut image = FlatMemory::new();
    for (base, bytes) in program.segments() {
        image.load(*base as u64, bytes);
    }
    Ok((result.trace, image))
}

/// Synthetic profiles with scattered hot sets — the workload family where
/// address clustering shines (used alongside the composite applications in
/// T1). All variants have more hot blocks than the 8-bank budget of the
/// headline experiment, so contiguous partitioning cannot isolate them.
/// Returns `(name, trace)` pairs.
pub fn scattered_suite(seed: u64) -> Vec<(String, Trace)> {
    let mut suite = Vec::new();
    for (name, hot, prob, span) in [
        ("scatter-sparse", 10usize, 0.90f64, 1u64 << 17),
        ("scatter-medium", 16, 0.88, 1 << 17),
        ("scatter-dense", 24, 0.85, 1 << 18),
        ("scatter-extreme", 12, 0.96, 1 << 18),
    ] {
        let trace: Trace = HotColdGen::new(span, hot, prob)
            .block_size(2048)
            .seed(seed)
            .events(80_000)
            .collect();
        suite.push((name.to_owned(), trace));
    }
    // A phase-structured workload (media-pipeline-like).
    let regions = vec![(0u64, 8 << 10), (96 << 10, 4 << 10), (160 << 10, 16 << 10)];
    let trace: Trace = MarkovGen::new(regions, 0.002)
        .seed(seed)
        .events(80_000)
        .collect();
    suite.push(("phased-media".to_owned(), trace));
    suite
}

/// Builds a composite embedded *application* trace from a sequence of
/// kernel phases, relocating each kernel's data sections into an
/// interleaved "linker" layout.
///
/// Single kernels lay their data out in three tidy contiguous sections, so
/// a bank-limited partitioner can already isolate them. Real embedded
/// applications link many objects of wildly different heat in declaration
/// order — hot coefficient tables sit between cold frame buffers. This
/// builder reproduces that structure from real TinyRISC traces: each
/// kernel's input/output/table sections are assigned consecutive 16 KiB
/// slots grouped *by kernel* (declaration order), so hot objects of
/// different phases end up scattered across the address map.
///
/// # Errors
///
/// Propagates kernel execution errors.
pub fn composite_app(phases: &[(Kernel, u32)], seed: u64) -> Result<Trace, FlowError> {
    const SECTION_SHIFT: u32 = 16; // kernel sections are 64 KiB apart
    const SLOT_BYTES: u64 = 16 << 10; // relocated object slot
    let mut out = Trace::new();
    for (k_idx, &(kernel, scale)) in phases.iter().enumerate() {
        let run = kernel
            // lpmem-lint: allow(D03, reason = "per-phase constant offset expanded by seed_from_u64 downstream; system-flow goldens pin these exact streams")
            .run(scale, seed ^ (k_idx as u64))
            .map_err(FlowError::from)?;
        for ev in run.trace.data_only() {
            // Original sections start at 0x10000 (in), 0x20000 (out),
            // 0x30000 (tables).
            let region = (ev.addr >> SECTION_SHIFT).saturating_sub(1);
            let offset = ev.addr & ((1 << SECTION_SHIFT) - 1);
            let slot = (k_idx as u64) * 3 + region;
            let mut moved = ev;
            moved.addr = slot * SLOT_BYTES + (offset % SLOT_BYTES);
            out.push(moved);
        }
    }
    Ok(out)
}

/// The composite-application suite used by the T1 experiment: four
/// multi-phase embedded applications in the style of the 1B.1 evaluation.
///
/// # Errors
///
/// Propagates kernel execution errors.
pub fn composite_suite(seed: u64) -> Result<Vec<(String, Trace)>, FlowError> {
    let apps: Vec<(&str, Vec<(Kernel, u32)>)> = vec![
        (
            "app-media",
            vec![
                (Kernel::Fir, 96),
                (Kernel::Dct8, 24),
                (Kernel::Conv2d, 16),
                (Kernel::RleEncode, 96),
            ],
        ),
        (
            "app-inspect",
            vec![
                (Kernel::Crc32, 96),
                (Kernel::Histogram, 96),
                (Kernel::StrSearch, 96),
            ],
        ),
        (
            "app-dsp",
            vec![(Kernel::MatMul, 12), (Kernel::Fir, 64), (Kernel::Dct8, 16)],
        ),
        (
            "app-store",
            vec![
                (Kernel::BubbleSort, 64),
                (Kernel::Histogram, 64),
                (Kernel::RleEncode, 64),
            ],
        ),
    ];
    apps.into_iter()
        .map(|(name, phases)| Ok((name.to_owned(), composite_app(&phases, seed)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_suite_runs_everything() {
        let runs = kernel_suite(1).unwrap();
        assert_eq!(runs.len(), Kernel::ALL.len());
        assert!(runs.iter().all(|r| !r.trace.is_empty()));
    }

    #[test]
    fn composite_apps_have_scattered_heat() {
        use lpmem_trace::BlockProfile;
        let suite = composite_suite(1).unwrap();
        assert_eq!(suite.len(), 4);
        for (name, trace) in &suite {
            let p = BlockProfile::from_trace(trace, 2048).unwrap();
            // Interleaved layouts must show meaningful heat scatter.
            assert!(p.scatter() > 0.1, "{name} scatter {}", p.scatter());
        }
    }

    #[test]
    fn scattered_suite_has_scattered_profiles() {
        use lpmem_trace::BlockProfile;
        let suite = scattered_suite(3);
        assert_eq!(suite.len(), 5);
        for (name, trace) in &suite {
            let p = BlockProfile::from_trace(trace, 2048).unwrap();
            assert!(p.num_blocks() > 8, "{name} too small");
        }
    }
}
