//! Named workload suites used by the experiment harness and examples, plus
//! the per-device workload archetypes and mixes the fleet simulator draws
//! from (DESIGN.md §11).

use lpmem_isa::{Backend, Kernel, KernelRun, Machine};
use lpmem_mem::FlatMemory;
use lpmem_trace::gen::{HotColdGen, MarkovGen, PhaseScatterGen, PointerChaseGen, StridedGen};
use lpmem_trace::{MemEvent, Trace};
use lpmem_util::Rng;

use crate::FlowError;

/// Runs the full TinyRISC kernel suite at default scales.
///
/// # Errors
///
/// Propagates kernel execution errors (never expected: the kernels are
/// self-verifying).
pub fn kernel_suite(seed: u64) -> Result<Vec<KernelRun>, FlowError> {
    Kernel::ALL
        .iter()
        .map(|&k| k.run(k.default_scale(), seed).map_err(FlowError::from))
        .collect()
}

/// Runs a kernel and returns its trace together with the program's initial
/// memory image (the state a replay cache must start from).
///
/// # Errors
///
/// Propagates kernel execution errors.
pub fn kernel_trace_and_image(
    kernel: Kernel,
    scale: u32,
    seed: u64,
) -> Result<(Trace, FlatMemory), FlowError> {
    let program = kernel.program(scale, seed);
    let mut machine = Machine::new(&program);
    let result = machine.run_with(Backend::Compiled, 200_000_000)?;
    let mut image = FlatMemory::new();
    for (base, bytes) in program.segments() {
        image.load(*base as u64, bytes);
    }
    Ok((result.trace, image))
}

/// Synthetic profiles with scattered hot sets — the workload family where
/// address clustering shines (used alongside the composite applications in
/// T1). All variants have more hot blocks than the 8-bank budget of the
/// headline experiment, so contiguous partitioning cannot isolate them.
/// Returns `(name, trace)` pairs.
pub fn scattered_suite(seed: u64) -> Vec<(String, Trace)> {
    let mut suite = Vec::new();
    for (name, hot, prob, span) in [
        ("scatter-sparse", 10usize, 0.90f64, 1u64 << 17),
        ("scatter-medium", 16, 0.88, 1 << 17),
        ("scatter-dense", 24, 0.85, 1 << 18),
        ("scatter-extreme", 12, 0.96, 1 << 18),
    ] {
        let trace: Trace = HotColdGen::new(span, hot, prob)
            .block_size(2048)
            .seed(seed)
            .events(80_000)
            .collect();
        suite.push((name.to_owned(), trace));
    }
    // A phase-structured workload (media-pipeline-like).
    let regions = vec![(0u64, 8 << 10), (96 << 10, 4 << 10), (160 << 10, 16 << 10)];
    let trace: Trace = MarkovGen::new(regions, 0.002)
        .seed(seed)
        .events(80_000)
        .collect();
    suite.push(("phased-media".to_owned(), trace));
    suite
}

/// Builds a composite embedded *application* trace from a sequence of
/// kernel phases, relocating each kernel's data sections into an
/// interleaved "linker" layout.
///
/// Single kernels lay their data out in three tidy contiguous sections, so
/// a bank-limited partitioner can already isolate them. Real embedded
/// applications link many objects of wildly different heat in declaration
/// order — hot coefficient tables sit between cold frame buffers. This
/// builder reproduces that structure from real TinyRISC traces: each
/// kernel's input/output/table sections are assigned consecutive 16 KiB
/// slots grouped *by kernel* (declaration order), so hot objects of
/// different phases end up scattered across the address map.
///
/// # Errors
///
/// Propagates kernel execution errors.
pub fn composite_app(phases: &[(Kernel, u32)], seed: u64) -> Result<Trace, FlowError> {
    const SECTION_SHIFT: u32 = 16; // kernel sections are 64 KiB apart
    const SLOT_BYTES: u64 = 16 << 10; // relocated object slot
    let mut out = Trace::new();
    for (k_idx, &(kernel, scale)) in phases.iter().enumerate() {
        let run = kernel
            .run(scale, seed ^ (k_idx as u64))
            .map_err(FlowError::from)?;
        for ev in run.trace.data_only() {
            // Original sections start at 0x10000 (in), 0x20000 (out),
            // 0x30000 (tables).
            let region = (ev.addr >> SECTION_SHIFT).saturating_sub(1);
            let offset = ev.addr & ((1 << SECTION_SHIFT) - 1);
            let slot = (k_idx as u64) * 3 + region;
            let mut moved = ev;
            moved.addr = slot * SLOT_BYTES + (offset % SLOT_BYTES);
            out.push(moved);
        }
    }
    Ok(out)
}

/// The composite-application suite used by the T1 experiment: four
/// multi-phase embedded applications in the style of the 1B.1 evaluation.
///
/// # Errors
///
/// Propagates kernel execution errors.
pub fn composite_suite(seed: u64) -> Result<Vec<(String, Trace)>, FlowError> {
    let apps: Vec<(&str, Vec<(Kernel, u32)>)> = vec![
        (
            "app-media",
            vec![
                (Kernel::Fir, 96),
                (Kernel::Dct8, 24),
                (Kernel::Conv2d, 16),
                (Kernel::RleEncode, 96),
            ],
        ),
        (
            "app-inspect",
            vec![
                (Kernel::Crc32, 96),
                (Kernel::Histogram, 96),
                (Kernel::StrSearch, 96),
            ],
        ),
        (
            "app-dsp",
            vec![(Kernel::MatMul, 12), (Kernel::Fir, 64), (Kernel::Dct8, 16)],
        ),
        (
            "app-store",
            vec![
                (Kernel::BubbleSort, 64),
                (Kernel::Histogram, 64),
                (Kernel::RleEncode, 64),
            ],
        ),
    ];
    apps.into_iter()
        .map(|(name, phases)| Ok((name.to_owned(), composite_app(&phases, seed)?)))
        .collect()
}

/// A workload *archetype*: one of the synthetic generator families a fleet
/// device can run, with device-level parameter *drift* so no two devices of
/// the same class are exact clones.
///
/// Archetypes stream events directly from the generator iterators — the
/// fleet path never materializes a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceArchetype {
    /// Scattered hot working set ([`HotColdGen`]): embedded control code.
    HotCold,
    /// Loop-nest array sweeps ([`StridedGen`]): FIR/matmul-style traffic.
    Strided,
    /// Phase-structured region traffic ([`MarkovGen`]): media pipelines.
    Phased,
    /// Low-locality pointer chasing ([`PointerChaseGen`]): worst case.
    PointerChase,
    /// Interleaved per-phase working sets ([`PhaseScatterGen`]).
    PhaseScatter,
}

impl DeviceArchetype {
    /// Every archetype, in report order (the order of [`WorkloadMix`]
    /// weights).
    pub const ALL: [DeviceArchetype; 5] = [
        DeviceArchetype::HotCold,
        DeviceArchetype::Strided,
        DeviceArchetype::Phased,
        DeviceArchetype::PointerChase,
        DeviceArchetype::PhaseScatter,
    ];

    /// Stable lowercase name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            DeviceArchetype::HotCold => "hot-cold",
            DeviceArchetype::Strided => "strided",
            DeviceArchetype::Phased => "phased",
            DeviceArchetype::PointerChase => "chase",
            DeviceArchetype::PhaseScatter => "phase-scatter",
        }
    }

    /// Position in [`DeviceArchetype::ALL`] (and in mix weight vectors).
    pub fn index(self) -> usize {
        match self {
            DeviceArchetype::HotCold => 0,
            DeviceArchetype::Strided => 1,
            DeviceArchetype::Phased => 2,
            DeviceArchetype::PointerChase => 3,
            DeviceArchetype::PhaseScatter => 4,
        }
    }

    /// Returns a stream of exactly `n` events for one device of this
    /// archetype. `seed` drives the generator RNG; `drift` (any u64, only
    /// its low bits matter) deterministically jitters the generator's
    /// *parameters* — working-set size, stride, dwell, region count — so a
    /// fleet of one class still covers a parameter neighbourhood, the
    /// per-device heterogeneity the dark-silicon CMP work calls for.
    pub fn events(self, seed: u64, n: usize, drift: u64) -> Box<dyn Iterator<Item = MemEvent>> {
        match self {
            DeviceArchetype::HotCold => {
                let num_hot = 8 + (drift % 9) as usize;
                let hot_prob = 0.85 + 0.01 * (drift % 8) as f64;
                Box::new(
                    HotColdGen::new(1 << 17, num_hot, hot_prob)
                        .block_size(2048)
                        .seed(seed)
                        .events(n),
                )
            }
            DeviceArchetype::Strided => {
                let stride = 16u64 << (drift % 3);
                // Small enough that typical stream lengths wrap the array,
                // so strided devices exhibit the periodic reuse their real
                // loop nests would.
                let array = 4u64 << 10;
                let per_pass = (array / stride) as usize;
                let passes = n.div_ceil(per_pass);
                Box::new(
                    StridedGen::new(0x1_0000, array, stride, passes)
                        .write_every(4 + (drift % 4) as usize)
                        .events()
                        .take(n),
                )
            }
            DeviceArchetype::Phased => {
                let regions: Vec<(u64, u64)> = (0..2 + drift % 3)
                    .map(|r| (r * (96 << 10), (4u64 << 10) << (r % 3)))
                    .collect();
                let switch_prob = 0.002 + 0.001 * (drift % 4) as f64;
                Box::new(MarkovGen::new(regions, switch_prob).seed(seed).events(n))
            }
            DeviceArchetype::PointerChase => {
                let len = 1u64 << (14 + drift % 5);
                Box::new(PointerChaseGen::new(0x4_0000, len).seed(seed).events(n))
            }
            DeviceArchetype::PhaseScatter => {
                let phases = 2 + (drift % 4) as usize;
                let blocks_per_phase = 3 + (drift % 5) as usize;
                let dwell = 64usize << (drift % 3);
                Box::new(
                    PhaseScatterGen::new(phases, blocks_per_phase, dwell)
                        .seed(seed)
                        .events(n),
                )
            }
        }
    }
}

/// A named probability mix over [`DeviceArchetype`]s: the population profile
/// of a fleet. Weights are validated at construction (finite, non-negative,
/// positive sum), so [`WorkloadMix::pick`] is total.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    name: String,
    weights: [f64; DeviceArchetype::ALL.len()],
}

impl WorkloadMix {
    /// Every archetype equally likely.
    pub fn uniform() -> Self {
        WorkloadMix {
            name: "uniform".to_owned(),
            weights: [1.0; 5],
        }
    }

    /// Embedded-control fleet: dominated by hot-cold and strided traffic.
    pub fn embedded() -> Self {
        WorkloadMix {
            name: "embedded".to_owned(),
            weights: [4.0, 3.0, 1.0, 1.0, 1.0],
        }
    }

    /// Media fleet: dominated by phase-structured traffic.
    pub fn media() -> Self {
        WorkloadMix {
            name: "media".to_owned(),
            weights: [1.0, 1.0, 4.0, 1.0, 3.0],
        }
    }

    /// Pessimistic fleet: dominated by pointer chasing.
    pub fn chase() -> Self {
        WorkloadMix {
            name: "chase".to_owned(),
            weights: [1.0, 1.0, 1.0, 5.0, 2.0],
        }
    }

    /// Builds a mix from explicit weights (one per archetype, in
    /// [`DeviceArchetype::ALL`] order). Returns `None` unless every weight
    /// is finite and non-negative and the sum is positive.
    pub fn custom(name: &str, weights: [f64; 5]) -> Option<Self> {
        let valid =
            weights.iter().all(|w| w.is_finite() && *w >= 0.0) && weights.iter().sum::<f64>() > 0.0;
        if !valid {
            return None;
        }
        Some(WorkloadMix {
            name: name.to_owned(),
            weights,
        })
    }

    /// Parses a preset name (`uniform`, `embedded`, `media`, `chase`) or an
    /// explicit 5-weight list like `"4,3,1,1,1"`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "uniform" => return Some(Self::uniform()),
            "embedded" => return Some(Self::embedded()),
            "media" => return Some(Self::media()),
            "chase" => return Some(Self::chase()),
            _ => {}
        }
        let parts: Vec<f64> = s
            .split(',')
            .map(|p| p.trim().parse::<f64>().ok())
            .collect::<Option<Vec<f64>>>()?;
        let weights: [f64; 5] = parts.try_into().ok()?;
        Self::custom(s.trim(), weights)
    }

    /// The mix's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Weights in [`DeviceArchetype::ALL`] order.
    pub fn weights(&self) -> &[f64; 5] {
        &self.weights
    }

    /// Draws one archetype according to the weights.
    pub fn pick(&self, rng: &mut Rng) -> DeviceArchetype {
        let i = rng
            .weighted_index(&self.weights)
            .expect("mix weights validated at construction");
        DeviceArchetype::ALL[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_suite_runs_everything() {
        let runs = kernel_suite(1).unwrap();
        assert_eq!(runs.len(), Kernel::ALL.len());
        assert!(runs.iter().all(|r| !r.trace.is_empty()));
    }

    #[test]
    fn composite_apps_have_scattered_heat() {
        use lpmem_trace::BlockProfile;
        let suite = composite_suite(1).unwrap();
        assert_eq!(suite.len(), 4);
        for (name, trace) in &suite {
            let p = BlockProfile::from_trace(trace, 2048).unwrap();
            // Interleaved layouts must show meaningful heat scatter.
            assert!(p.scatter() > 0.1, "{name} scatter {}", p.scatter());
        }
    }

    #[test]
    fn scattered_suite_has_scattered_profiles() {
        use lpmem_trace::BlockProfile;
        let suite = scattered_suite(3);
        assert_eq!(suite.len(), 5);
        for (name, trace) in &suite {
            let p = BlockProfile::from_trace(trace, 2048).unwrap();
            assert!(p.num_blocks() > 8, "{name} too small");
        }
    }

    #[test]
    fn archetypes_emit_exact_counts_for_every_drift() {
        for arch in DeviceArchetype::ALL {
            for drift in 0..12u64 {
                assert_eq!(
                    arch.events(7, 257, drift).count(),
                    257,
                    "{} drift {drift}",
                    arch.name()
                );
            }
        }
    }

    #[test]
    fn archetypes_are_deterministic_per_seed() {
        for arch in DeviceArchetype::ALL {
            let a: Vec<_> = arch.events(11, 300, 3).collect();
            let b: Vec<_> = arch.events(11, 300, 3).collect();
            assert_eq!(a, b, "{}", arch.name());
        }
    }

    #[test]
    fn archetype_index_matches_all_order() {
        for (i, arch) in DeviceArchetype::ALL.into_iter().enumerate() {
            assert_eq!(arch.index(), i);
        }
    }

    #[test]
    fn mix_parse_accepts_presets_and_weights() {
        assert_eq!(WorkloadMix::parse("uniform"), Some(WorkloadMix::uniform()));
        assert_eq!(WorkloadMix::parse("media"), Some(WorkloadMix::media()));
        let custom = WorkloadMix::parse("4,3,1,1,1").unwrap();
        assert_eq!(custom.weights(), &[4.0, 3.0, 1.0, 1.0, 1.0]);
        assert!(WorkloadMix::parse("bogus").is_none());
        assert!(WorkloadMix::parse("1,2,3").is_none());
        assert!(WorkloadMix::parse("1,2,3,4,-5").is_none());
        assert!(WorkloadMix::parse("0,0,0,0,0").is_none());
    }

    #[test]
    fn uniform_mix_covers_every_archetype() {
        let mix = WorkloadMix::uniform();
        let mut rng = Rng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[mix.pick(&mut rng).index()] = true;
        }
        assert_eq!(seen, [true; 5]);
    }
}
