//! The 1B.4 flow: two-level data scheduling for multi-context
//! reconfigurable fabrics.

use lpmem_energy::{Energy, Technology};
use lpmem_sched::{
    external_only_schedule, greedy_schedule, naive_schedule, AppSpec, ContextSpec, SchedPlatform,
};

use crate::FlowError;

/// Builds a DSP-pipeline application in the style of the 1B.4 evaluation: a
/// chain of contexts where each stage consumes its predecessor's frame
/// buffer and a small hot coefficient table, repeated over `iterations`
/// loop iterations (frames).
///
/// `stages` contexts are produced; `seed` perturbs sizes and traffic so a
/// suite of distinct applications can be generated deterministically.
///
/// # Errors
///
/// Propagates [`lpmem_sched::SchedError`] (never expected for valid
/// arguments).
///
/// # Panics
///
/// Panics if `stages` is zero.
pub fn dsp_pipeline_app(stages: usize, iterations: u64, seed: u64) -> Result<AppSpec, FlowError> {
    assert!(stages > 0, "pipeline needs at least one stage");
    // Simple deterministic LCG so the builder needs no external RNG.
    // lpmem-lint: allow(D03, reason = "Knuth LCG constants mixing one seed into one state, not a seed-path derivation; the app stream is pinned by goldens")
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = |lo: u64, hi: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lo + (state >> 33) % (hi - lo)
    };

    let mut arrays: Vec<(String, u64)> = Vec::new();
    // Frame buffers between stages (stage i reads buf[i], writes buf[i+1]).
    for i in 0..=stages {
        arrays.push((format!("buf{i}"), 1024 * next(2, 8)));
    }
    // One small, hot coefficient table per stage.
    for i in 0..stages {
        arrays.push((format!("coef{i}"), 64 * next(2, 8)));
    }
    let mut contexts = Vec::with_capacity(stages);
    for i in 0..stages {
        let buf_in = i;
        let buf_out = i + 1;
        let coef = stages + 1 + i;
        let reads_in = next(2_000, 8_000);
        let writes_out = next(1_000, 4_000);
        let coef_reads = next(4_000, 16_000);
        contexts.push(ContextSpec::new(
            next(64, 512),
            vec![
                (buf_in, reads_in, 0),
                (buf_out, 0, writes_out),
                (coef, coef_reads, 0),
            ],
        ));
    }
    let named: Vec<(&str, u64)> = arrays.iter().map(|(n, b)| (n.as_str(), *b)).collect();
    Ok(AppSpec::with_iterations(named, contexts, iterations)?)
}

/// Result of the scheduling comparison for one application.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SchedulingOutcome {
    /// Application label.
    pub name: String,
    /// Energy of the external-only design (no on-chip data).
    pub external_only: Energy,
    /// Energy of the naive all-L1 placement.
    pub naive: Energy,
    /// Energy of the benefit-aware greedy schedule.
    pub greedy: Energy,
    /// Reconfiguration energy under the naive schedule.
    pub naive_reconfig: Energy,
    /// Reconfiguration energy under the greedy schedule (with
    /// configuration caching).
    pub greedy_reconfig: Energy,
    /// Contexts in the application.
    pub contexts: usize,
    /// Loop iterations.
    pub iterations: u64,
}

impl SchedulingOutcome {
    /// Fractional saving of the greedy scheduler vs. the naive placement.
    pub fn saving_vs_naive(&self) -> f64 {
        self.greedy.saving_vs(self.naive)
    }

    /// Fractional reconfiguration-energy saving (the paper's second
    /// claim).
    pub fn reconfig_saving(&self) -> f64 {
        self.greedy_reconfig.saving_vs(self.naive_reconfig)
    }
}

/// Evaluates the greedy scheduler against the naive and external-only
/// baselines on one application.
///
/// # Errors
///
/// Propagates schedule evaluation errors (a failure here indicates a bug in
/// a scheduler, since both baselines are feasible by construction).
pub fn run_scheduling(
    name: &str,
    app: &AppSpec,
    platform: &SchedPlatform,
) -> Result<SchedulingOutcome, FlowError> {
    let greedy = platform.evaluate(app, &greedy_schedule(app, platform))?;
    let naive = platform.evaluate(app, &naive_schedule(app, platform))?;
    let external = platform.evaluate(app, &external_only_schedule(app))?;
    Ok(SchedulingOutcome {
        name: name.to_owned(),
        external_only: external.total(),
        naive: naive.total(),
        greedy: greedy.total(),
        naive_reconfig: naive.component("reconfig"),
        greedy_reconfig: greedy.component("reconfig"),
        contexts: app.num_contexts(),
        iterations: app.iterations(),
    })
}

/// The default fabric of the T4 experiment: 1 KiB L0, 16 KiB L1.
pub fn default_platform(tech: &Technology) -> SchedPlatform {
    SchedPlatform::new(tech, 1 << 10, 16 << 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_builder_is_deterministic() {
        let a = dsp_pipeline_app(4, 16, 7).unwrap();
        let b = dsp_pipeline_app(4, 16, 7).unwrap();
        let c = dsp_pipeline_app(4, 16, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_contexts(), 4);
        assert_eq!(a.num_arrays(), 4 + 1 + 4);
    }

    #[test]
    fn greedy_beats_baselines_on_pipelines() {
        let tech = Technology::tech180();
        let platform = default_platform(&tech);
        for seed in 0..5 {
            let app = dsp_pipeline_app(4, 32, seed).unwrap();
            let out = run_scheduling(&format!("dsp{seed}"), &app, &platform).unwrap();
            assert!(out.greedy <= out.naive, "seed {seed}: {out:?}");
            assert!(out.greedy < out.external_only * 0.6, "seed {seed}");
        }
    }

    #[test]
    fn config_caching_cuts_reconfig_energy() {
        let tech = Technology::tech180();
        let platform = default_platform(&tech);
        let app = dsp_pipeline_app(3, 64, 1).unwrap();
        let out = run_scheduling("dsp", &app, &platform).unwrap();
        assert!(
            out.reconfig_saving() > 0.5,
            "reconfig saving {}",
            out.reconfig_saving()
        );
    }
}
