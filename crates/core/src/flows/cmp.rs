//! The chip-multiprocessor flow: N cores' kernels interleaved through
//! private L1s into the shared compressed NUCA LLC of `lpmem-cmp`.
//!
//! Each core runs its own kernel (rotating through [`Kernel::ALL`]
//! starting from the grid point's kernel) on its own derived seed, so a
//! 4-core run is a genuinely heterogeneous multi-programmed workload,
//! not four copies of one trace. The instruction side stays per-core —
//! every core has a private instruction bus with its own trained
//! [`RegionEncoder`] — while the data side goes through
//! [`simulate_cmp`]'s shared LLC.
//!
//! Degeneracy guarantees (the differential tests pin both):
//!
//! - a *disabled* spec never reaches this module
//!   ([`FlowSpec::run_with_cmp`](crate::flows::FlowSpec::run_with_cmp)
//!   takes the plain path), so zero-CMP reports stay byte-identical;
//! - a *passthrough* spec (1 uncompressed bank, no tech axis, no
//!   budget) is priced as the sum of independent single-core system
//!   flows — for 1 core that is *exactly* the existing system flow.

use lpmem_buscode::RegionEncoder;
use lpmem_cmp::{simulate_cmp, CmpReport, CmpSpec, CoreRun};
use lpmem_compress::DiffCodec;
use lpmem_energy::{BusModel, Energy};
use lpmem_fault::{run_campaign, FaultSpec, ReliabilityReport};
use lpmem_isa::Kernel;
use lpmem_trace::AccessKind;
use lpmem_util::SplitMix64;

use crate::flows::spec::{data_memory_exposure, FlowSpec, FlowSummary, TechNode, VariantSpec};
use crate::flows::system::run_system_with_tech;
use crate::workloads::kernel_trace_and_image;
use crate::FlowError;

/// The kernel core `i` runs: rotate through [`Kernel::ALL`] starting
/// from the grid point's kernel.
fn core_kernel(base: Kernel, core: u32) -> Kernel {
    let base_index = Kernel::ALL
        .iter()
        .position(|k| *k == base)
        .expect("every kernel is in Kernel::ALL");
    Kernel::ALL[(base_index + core as usize) % Kernel::ALL.len()]
}

/// The seed core `i` runs on. Core 0 keeps the task seed unchanged so
/// the 1-core passthrough is bit-identical to the single-core flow;
/// further cores derive from it on the CMP tag.
fn core_seed(seed: u64, core: u32) -> u64 {
    if core == 0 {
        seed
    } else {
        SplitMix64::derive(seed, &[u64::from(core), lpmem_cmp::TAG_CMP])
    }
}

/// Builds the per-core workloads of a CMP run: core `i` executes
/// `core_kernel(kernel, i)` at the shared scale on `core_seed(seed, i)`.
///
/// Public so the design-space explorer can feed the same multi-programmed
/// workload into [`simulate_cmp`] under its own cache geometry.
///
/// # Errors
///
/// Propagates kernel generation errors.
pub fn cmp_core_runs(
    kernel: Kernel,
    scale: u32,
    seed: u64,
    cores: u32,
) -> Result<Vec<CoreRun>, FlowError> {
    (0..cores)
        .map(|c| {
            let (trace, image) =
                kernel_trace_and_image(core_kernel(kernel, c), scale, core_seed(seed, c))?;
            Ok(CoreRun { trace, image })
        })
        .collect()
}

/// Runs the CMP scenario on one grid point: the system flow's platform
/// with `cmp.cores` cores sharing the LLC `cmp` describes.
///
/// # Errors
///
/// Returns [`FlowError::EmptyInput`] when a core's trace has no
/// instruction fetches, panics (via [`simulate_cmp`]) when the spec's
/// LLC geometry is invalid for the platform's L1 line size, and
/// propagates kernel errors.
pub fn run_cmp(
    kernel: Kernel,
    scale: u32,
    seed: u64,
    tech: TechNode,
    variant: &VariantSpec,
    fault: &FaultSpec,
    cmp: &CmpSpec,
) -> Result<FlowSummary, FlowError> {
    assert!(cmp.enabled(), "run_cmp needs an enabled CMP spec");
    let technology = tech.technology();
    let workload = format!("cmp{}:{}", cmp.cores, kernel.name());

    if cmp.passthrough() {
        // Degenerate LLC: one uncompressed bank, no heterogeneity, no
        // budget — every core's traffic passes straight through, so the
        // chip prices as the sum of independent single-core systems.
        let mut baseline = Energy::ZERO;
        let mut optimized = Energy::ZERO;
        let mut fetches = 0u64;
        let mut reliability: Option<ReliabilityReport> = None;
        for c in 0..cmp.cores {
            let k = core_kernel(kernel, c);
            let s = core_seed(seed, c);
            let out = run_system_with_tech(
                k,
                scale,
                s,
                variant.platform,
                &DiffCodec::new(),
                variant.regions,
                &technology,
            )?;
            baseline += out.baseline.total();
            optimized += out.optimized.total();
            fetches += out.fetches;
            if fault.enabled() {
                let run = k.run(scale, s)?;
                let mut exposure = data_memory_exposure(&run.trace, variant, &technology)?;
                exposure.domain = u64::from(c);
                let report = run_campaign(fault, &technology, &exposure, s);
                optimized += fault
                    .protection
                    .access_overhead(&technology, exposure.accesses());
                reliability = Some(match reliability {
                    Some(mut acc) => {
                        acc.merge(&report);
                        acc
                    }
                    None => report,
                });
            }
        }
        return Ok(FlowSummary {
            flow: FlowSpec::System,
            workload,
            baseline,
            optimized,
            events: fetches,
            reliability,
            cmp: Some(CmpReport {
                spec: cmp.label(),
                cores: cmp.cores,
                llc_banks: 0,
                dark_banks: 0,
                llc_lookups: 0,
                llc_hits: 0,
                llc_lines: 0,
                llc_compressed_lines: 0,
                offchip_beats: 0,
                cycles: 0,
            }),
        });
    }

    // Active scenario. Instruction side first: each core trains its own
    // bus encoder on its own fetch stream.
    let runs = cmp_core_runs(kernel, scale, seed, cmp.cores)?;
    let bus = BusModel::onchip(&technology, 32);
    let mut raw_transitions = 0u64;
    let mut encoded_transitions = 0u64;
    let mut fetches = 0u64;
    for run in &runs {
        let stream: Vec<(u64, u32)> = run
            .trace
            .iter()
            .filter(|e| e.kind == AccessKind::InstrFetch)
            .map(|e| (e.addr, e.value))
            .collect();
        if stream.is_empty() {
            return Err(FlowError::EmptyInput("trace has no instruction fetches"));
        }
        let encoder = RegionEncoder::train(&stream, variant.regions);
        let enc = encoder.evaluate(&stream);
        raw_transitions += enc.raw_transitions;
        encoded_transitions += enc.encoded_transitions;
        fetches += stream.len() as u64;
    }

    // Data side: the shared-LLC simulation.
    let sim = simulate_cmp(
        cmp,
        variant.platform.cache_config(),
        &technology,
        runs,
        fault,
        seed,
    );

    let mut baseline = sim.baseline.total();
    baseline += bus.energy_of(raw_transitions);
    let mut optimized = sim.optimized.total();
    optimized += bus.energy_of(encoded_transitions);
    // Same encoder/decoder gate-layer charge as the system flow (see
    // `run_system_with_tech`), summed over the cores' private buses.
    let gate_pj = 0.004 * bus.transition_energy().as_pj();
    optimized += Energy::from_pj(gate_pj * (raw_transitions + encoded_transitions) as f64);

    Ok(FlowSummary {
        flow: FlowSpec::System,
        workload,
        baseline,
        optimized,
        events: fetches,
        reliability: sim.reliability,
        cmp: Some(sim.report),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_fault::Protection;

    fn passthrough_1core() -> CmpSpec {
        CmpSpec {
            cores: 1,
            banks: 1,
            bank_kib: 32,
            ways: 4,
            ..CmpSpec::off()
        }
    }

    #[test]
    fn disabled_cmp_is_byte_identical_to_the_fault_path() {
        let variant = VariantSpec::default();
        let fault = FaultSpec::accelerated(Protection::Parity);
        for flow in FlowSpec::ALL {
            let plain = flow
                .run_with_faults(Kernel::Fir, 48, 2003, TechNode::T180, &variant, &fault)
                .unwrap();
            let off = flow
                .run_with_cmp(
                    Kernel::Fir,
                    48,
                    2003,
                    TechNode::T180,
                    &variant,
                    &fault,
                    &CmpSpec::off(),
                )
                .unwrap();
            assert_eq!(plain, off, "{flow}");
            assert!(off.cmp.is_none());
        }
    }

    #[test]
    fn one_core_passthrough_degenerates_to_the_system_flow() {
        // A 1-core chip with one plain LLC bank *is* the single-core
        // system: same energies, same event count, exactly.
        let variant = VariantSpec::default();
        let spec = passthrough_1core();
        for fault in [FaultSpec::off(), FaultSpec::accelerated(Protection::Secded)] {
            let solo = FlowSpec::System
                .run_with_faults(Kernel::Fir, 48, 2003, TechNode::T90, &variant, &fault)
                .unwrap();
            let cmp = FlowSpec::System
                .run_with_cmp(
                    Kernel::Fir,
                    48,
                    2003,
                    TechNode::T90,
                    &variant,
                    &fault,
                    &spec,
                )
                .unwrap();
            assert_eq!(solo.baseline, cmp.baseline);
            assert_eq!(solo.optimized, cmp.optimized);
            assert_eq!(solo.events, cmp.events);
            assert_eq!(solo.reliability, cmp.reliability);
            assert_eq!(cmp.workload, "cmp1:fir");
            assert_eq!(cmp.cmp.as_ref().map(|r| r.cores), Some(1));
        }
    }

    #[test]
    fn cmp_applies_only_to_the_system_flow() {
        let variant = VariantSpec::default();
        let quad = CmpSpec::quad();
        let plain = FlowSpec::Partitioning
            .run(Kernel::Fir, 48, 2003, TechNode::T180, &variant)
            .unwrap();
        let under_cmp = FlowSpec::Partitioning
            .run_with_cmp(
                Kernel::Fir,
                48,
                2003,
                TechNode::T180,
                &variant,
                &FaultSpec::off(),
                &quad,
            )
            .unwrap();
        assert_eq!(plain, under_cmp);
    }

    #[test]
    fn active_cmp_reports_the_shared_llc_and_saves_energy() {
        let variant = VariantSpec::default();
        let out = run_cmp(
            Kernel::Fir,
            48,
            2003,
            TechNode::T180,
            &variant,
            &FaultSpec::off(),
            &CmpSpec::quad(),
        )
        .unwrap();
        let report = out.cmp.as_ref().expect("active run carries a report");
        assert_eq!(report.cores, 4);
        assert_eq!(report.llc_banks, 8);
        assert!(report.llc_lookups > 0);
        assert!(report.cycles > 0);
        assert!(out.events > 0);
        assert!(
            out.optimized < out.baseline,
            "shared compressed LLC should save energy: {} vs {}",
            out.optimized,
            out.baseline
        );
        // Heterogeneous multi-programming: the 4 cores run 4 kernels.
        assert_eq!(out.workload, "cmp4:fir");
        let runs = cmp_core_runs(Kernel::Fir, 48, 2003, 4).unwrap();
        assert_eq!(runs.len(), 4);
        assert_ne!(runs[0].trace.len(), runs[1].trace.len());
    }

    #[test]
    fn cmp_runs_are_deterministic() {
        let variant = VariantSpec::tight();
        let fault = FaultSpec::accelerated(Protection::Secded);
        let a = run_cmp(
            Kernel::Dct8,
            24,
            7,
            TechNode::T90,
            &variant,
            &fault,
            &CmpSpec::quad(),
        )
        .unwrap();
        let b = run_cmp(
            Kernel::Dct8,
            24,
            7,
            TechNode::T90,
            &variant,
            &fault,
            &CmpSpec::quad(),
        )
        .unwrap();
        assert_eq!(a, b);
        assert!(a.reliability.is_some());
    }
}
