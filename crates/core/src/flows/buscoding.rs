//! The 1B.3 flow: application-specific instruction-bus encoding.

use lpmem_buscode::{transitions, BusInvert, RegionEncoder};
use lpmem_energy::{BusModel, Energy, Technology};
use lpmem_trace::{AccessKind, Trace};

use crate::FlowError;

/// Result of the bus-encoding study for one workload.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BusCodingOutcome {
    /// Workload label.
    pub name: String,
    /// Fetches in the stream.
    pub fetches: u64,
    /// Transitions of the raw instruction stream.
    pub raw_transitions: u64,
    /// Transitions after the trained per-region XOR encoding.
    pub encoded_transitions: u64,
    /// Transitions under the bus-invert baseline (including its extra
    /// line).
    pub businvert_transitions: u64,
    /// Number of reprogrammable regions used.
    pub regions: usize,
    /// Total XOR gates across the regional transforms.
    pub gates: usize,
    /// Bus energy of the raw stream.
    pub raw_energy: Energy,
    /// Bus energy of the encoded stream.
    pub encoded_energy: Energy,
}

impl BusCodingOutcome {
    /// Fractional transition reduction of the functional encoding (the
    /// paper reports "up to half of the original transitions").
    pub fn reduction(&self) -> f64 {
        if self.raw_transitions == 0 {
            0.0
        } else {
            1.0 - self.encoded_transitions as f64 / self.raw_transitions as f64
        }
    }

    /// Fractional transition reduction of the bus-invert baseline.
    pub fn businvert_reduction(&self) -> f64 {
        if self.raw_transitions == 0 {
            0.0
        } else {
            1.0 - self.businvert_transitions as f64 / self.raw_transitions as f64
        }
    }
}

/// Trains a [`RegionEncoder`] on a trace's fetch stream and evaluates it
/// against the raw bus and the bus-invert baseline.
///
/// # Errors
///
/// Returns [`FlowError::EmptyInput`] when the trace has no instruction
/// fetches.
pub fn run_buscoding(
    name: &str,
    trace: &Trace,
    num_regions: usize,
    tech: &Technology,
) -> Result<BusCodingOutcome, FlowError> {
    let stream: Vec<(u64, u32)> = trace
        .iter()
        .filter(|e| e.kind == AccessKind::InstrFetch)
        .map(|e| (e.addr, e.value))
        .collect();
    if stream.is_empty() {
        return Err(FlowError::EmptyInput("trace has no instruction fetches"));
    }
    let encoder = RegionEncoder::train(&stream, num_regions);
    let report = encoder.evaluate(&stream);
    let bus = BusModel::onchip(tech, 32);
    Ok(BusCodingOutcome {
        name: name.to_owned(),
        fetches: stream.len() as u64,
        raw_transitions: report.raw_transitions,
        encoded_transitions: report.encoded_transitions,
        businvert_transitions: BusInvert::transitions(&stream),
        regions: report.regions,
        gates: report.gates,
        raw_energy: bus.energy_of(report.raw_transitions),
        encoded_energy: bus.energy_of(report.encoded_transitions),
    })
}

/// Sanity helper: transitions of an arbitrary word stream (re-exported for
/// harness use).
pub fn stream_transitions(words: &[u32]) -> u64 {
    transitions(words.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_isa::Kernel;

    #[test]
    fn encoding_reduces_kernel_fetch_transitions() {
        let run = Kernel::Fir.run(48, 2).unwrap();
        let out = run_buscoding("fir", &run.trace, 4, &Technology::tech180()).unwrap();
        assert!(out.fetches > 1000);
        assert!(out.raw_transitions > 0);
        assert!(
            out.encoded_transitions < out.raw_transitions,
            "encoding must reduce transitions"
        );
        assert!(out.encoded_energy < out.raw_energy);
        assert!(out.reduction() > 0.0);
    }

    #[test]
    fn functional_encoding_beats_businvert_on_kernels() {
        // Loop-dominated fetch streams have strong inter-bit correlation,
        // which the XOR family exploits and bus-invert cannot.
        let run = Kernel::MatMul.run(10, 1).unwrap();
        let out = run_buscoding("matmul", &run.trace, 4, &Technology::tech180()).unwrap();
        assert!(
            out.encoded_transitions < out.businvert_transitions,
            "xor {} vs businvert {}",
            out.encoded_transitions,
            out.businvert_transitions
        );
    }

    #[test]
    fn fetchless_trace_is_rejected() {
        let trace: Trace = vec![lpmem_trace::MemEvent::read(0)].into();
        assert!(matches!(
            run_buscoding("x", &trace, 2, &Technology::tech180()).unwrap_err(),
            FlowError::EmptyInput(_)
        ));
    }
}
