//! The 1B.2 flow: D-cache write-back compression on a simulated platform.

use lpmem_compress::{CompressedMemoryModel, LineCodec};
use lpmem_energy::{Energy, EnergyReport, OffChipModel, SramModel, Technology};
use lpmem_isa::{Backend, Kernel, Machine};
use lpmem_mem::{Backing, Cache, CacheConfig, FlatMemory};
use lpmem_trace::{AccessKind, Trace};

use crate::FlowError;

/// Platform presets for the compression study, mirroring the two systems of
/// the 1B.2 evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlatformKind {
    /// Lx-ST200-class VLIW: wide 64-byte lines, 4 KiB write-back D-cache.
    /// Wide lines mean more beats per write-back — the configuration where
    /// compression pays most (the paper reports 10–22% here).
    VliwLike,
    /// MIPS/SimpleScalar-class RISC: 16-byte lines, 2 KiB write-back
    /// D-cache (the paper reports 11–14% here).
    RiscLike,
}

impl PlatformKind {
    /// The D-cache geometry of this platform.
    pub fn cache_config(self) -> CacheConfig {
        match self {
            PlatformKind::VliwLike => CacheConfig::new(4 << 10, 64, 2),
            PlatformKind::RiscLike => CacheConfig::new(2 << 10, 16, 2),
        }
        .expect("preset geometries are valid")
    }

    /// The technology node of this platform.
    pub fn technology(self) -> Technology {
        match self {
            PlatformKind::VliwLike => Technology::tech130(),
            PlatformKind::RiscLike => Technology::tech180(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PlatformKind::VliwLike => "vliw-lx",
            PlatformKind::RiscLike => "risc-mips",
        }
    }
}

/// Parameters of the compression flow.
#[derive(Debug, Clone)]
pub struct CompressionConfig {
    /// D-cache geometry.
    pub cache: CacheConfig,
    /// Compression threshold as a fraction of the line size (the paper
    /// stores a line compressed only if it fits half a line slot).
    pub threshold: f64,
    /// Flush dirty lines at the end of the run (the application's final
    /// write-back burst).
    pub flush_at_end: bool,
}

impl CompressionConfig {
    /// The configuration of a platform preset.
    ///
    /// The default threshold is 0.75: a line is stored compressed whenever
    /// its encoding saves beats at bus granularity with margin. The paper's
    /// stricter variant — compressed lines must fit half a line slot — is
    /// obtained by setting [`threshold`](Self::threshold) to `0.5` and is
    /// exercised by the threshold-sweep ablation.
    pub fn for_platform(kind: PlatformKind) -> Self {
        CompressionConfig {
            cache: kind.cache_config(),
            threshold: 0.75,
            flush_at_end: true,
        }
    }
}

/// A [`Backing`] that compresses write-backs and credits compressed
/// refills, accounting beats both raw and actual.
struct CompressingBacking<'c> {
    mem: FlatMemory,
    codec: &'c dyn LineCodec,
    threshold: f64,
    model: CompressedMemoryModel,
    raw_fill_beats: u64,
    actual_fill_beats: u64,
    raw_wb_beats: u64,
    actual_wb_beats: u64,
    codec_words: u64,
    lines: u64,
    compressed_lines: u64,
}

impl<'c> CompressingBacking<'c> {
    fn new(mem: FlatMemory, codec: &'c dyn LineCodec, threshold: f64) -> Self {
        CompressingBacking {
            mem,
            codec,
            threshold,
            model: CompressedMemoryModel::new(),
            raw_fill_beats: 0,
            actual_fill_beats: 0,
            raw_wb_beats: 0,
            actual_wb_beats: 0,
            codec_words: 0,
            lines: 0,
            compressed_lines: 0,
        }
    }
}

impl Backing for CompressingBacking<'_> {
    fn read_block(&mut self, addr: u64, buf: &mut [u8]) {
        let raw = (buf.len() / 4) as u64;
        let actual = self.model.fill_beats(addr, buf.len()) as u64;
        self.raw_fill_beats += raw;
        self.actual_fill_beats += actual;
        if actual < raw {
            // The refill ran through the decompressor.
            self.codec_words += raw;
        }
        self.mem.read_block(addr, buf);
    }

    fn write_block(&mut self, addr: u64, data: &[u8]) {
        let raw = (data.len() / 4) as u64;
        let actual = self
            .model
            .write_back(self.codec, addr, data, self.threshold) as u64;
        self.raw_wb_beats += raw;
        self.actual_wb_beats += actual;
        self.codec_words += raw; // every dirty line runs through the compressor
        self.lines += 1;
        if actual < raw {
            self.compressed_lines += 1;
        }
        self.mem.write_block(addr, data);
    }
}

/// Result of the compression study for one workload on one platform.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CompressionOutcome {
    /// Workload label.
    pub name: String,
    /// Platform label.
    pub platform: String,
    /// Codec label.
    pub codec: String,
    /// Full-system baseline energy (D-cache + uncompressed off-chip
    /// traffic).
    pub baseline: EnergyReport,
    /// Full-system energy with write-back compression (including codec
    /// energy).
    pub compressed: EnergyReport,
    /// Dirty lines evicted.
    pub lines: u64,
    /// Lines that cleared the compression threshold.
    pub compressed_lines: u64,
    /// Off-chip beats without compression.
    pub raw_beats: u64,
    /// Off-chip beats with compression.
    pub actual_beats: u64,
    /// D-cache statistics of the run.
    pub hit_ratio: f64,
    /// Encoded-size histogram (index = beats per stored write-back line).
    pub size_histogram: Vec<u64>,
}

impl CompressionOutcome {
    /// Fractional total-energy saving (the paper's headline metric).
    pub fn energy_saving(&self) -> f64 {
        self.compressed.total().saving_vs(self.baseline.total())
    }

    /// Fraction of off-chip beats eliminated.
    pub fn traffic_saving(&self) -> f64 {
        if self.raw_beats == 0 {
            0.0
        } else {
            1.0 - self.actual_beats as f64 / self.raw_beats as f64
        }
    }
}

/// Replays the data side of `trace` through a D-cache in front of
/// `initial_mem`, compressing write-backs with `codec`.
///
/// # Errors
///
/// Returns [`FlowError::EmptyInput`] when the trace has no data accesses.
pub fn run_compression_trace(
    name: &str,
    platform: &str,
    trace: &Trace,
    initial_mem: FlatMemory,
    codec: &dyn LineCodec,
    cfg: &CompressionConfig,
    tech: &Technology,
) -> Result<CompressionOutcome, FlowError> {
    if !trace.iter().any(|e| e.kind.is_data()) {
        return Err(FlowError::EmptyInput("trace has no data accesses"));
    }
    let mut cache = Cache::new(cfg.cache);
    let mut backing = CompressingBacking::new(initial_mem, codec, cfg.threshold);
    let mut buf = [0u8; 4];
    for ev in trace {
        match ev.kind {
            AccessKind::InstrFetch => {}
            AccessKind::Read => {
                let n = (ev.size as usize).min(4);
                cache.read(ev.addr, &mut buf[..n], &mut backing);
            }
            AccessKind::Write => {
                let n = (ev.size as usize).min(4);
                let bytes = ev.value.to_le_bytes();
                cache.write(ev.addr, &bytes[..n], &mut backing);
            }
        }
    }
    if cfg.flush_at_end {
        cache.flush(&mut backing);
    }

    // Size histogram via a second pass over the model is unnecessary: we
    // reconstruct it from the per-line decisions recorded in the backing.
    let stats = cache.stats();
    let sram = SramModel::new(tech);
    let off = OffChipModel::new(tech);
    let cache_bytes = cfg.cache.size_bytes();
    let dcache_energy = sram.read_energy(cache_bytes) * stats.reads as f64
        + sram.write_energy(cache_bytes) * stats.writes as f64;

    let mut baseline = EnergyReport::new();
    baseline.add("dcache", dcache_energy);
    baseline.add("offchip.fill", off.transfer_energy(backing.raw_fill_beats));
    baseline.add(
        "offchip.writeback",
        off.transfer_energy(backing.raw_wb_beats),
    );

    let mut compressed = EnergyReport::new();
    compressed.add("dcache", dcache_energy);
    compressed.add(
        "offchip.fill",
        off.transfer_energy(backing.actual_fill_beats),
    );
    compressed.add(
        "offchip.writeback",
        off.transfer_energy(backing.actual_wb_beats),
    );
    compressed.add(
        "codec",
        Energy::from_pj(tech.codec_word_pj * backing.codec_words as f64),
    );

    Ok(CompressionOutcome {
        name: name.to_owned(),
        platform: platform.to_owned(),
        codec: codec.name().to_owned(),
        baseline,
        compressed,
        lines: backing.lines,
        compressed_lines: backing.compressed_lines,
        raw_beats: backing.raw_fill_beats + backing.raw_wb_beats,
        actual_beats: backing.actual_fill_beats + backing.actual_wb_beats,
        hit_ratio: stats.hit_ratio(),
        size_histogram: size_histogram_of(codec, trace, cfg),
    })
}

/// Rebuilds the stored-size histogram by replaying the same configuration
/// with a recording pass (cheap relative to the main replay).
fn size_histogram_of(codec: &dyn LineCodec, trace: &Trace, cfg: &CompressionConfig) -> Vec<u64> {
    let mut cache = Cache::new(cfg.cache);
    let mut mem = lpmem_mem::RecordingBacking::new(FlatMemory::new());
    let mut buf = [0u8; 4];
    for ev in trace {
        match ev.kind {
            AccessKind::InstrFetch => {}
            AccessKind::Read => {
                let n = (ev.size as usize).min(4);
                cache.read(ev.addr, &mut buf[..n], &mut mem);
            }
            AccessKind::Write => {
                let n = (ev.size as usize).min(4);
                let bytes = ev.value.to_le_bytes();
                cache.write(ev.addr, &bytes[..n], &mut mem);
            }
        }
    }
    if cfg.flush_at_end {
        cache.flush(&mut mem);
    }
    lpmem_compress::analyze_writebacks(codec, mem.write_backs(), cfg.threshold).size_histogram
}

/// Runs a kernel and feeds its trace (and initial memory image) through
/// [`run_compression_trace`].
///
/// # Errors
///
/// Propagates kernel execution and flow errors.
pub fn run_compression_kernel(
    kernel: Kernel,
    scale: u32,
    seed: u64,
    platform: PlatformKind,
    codec: &dyn LineCodec,
) -> Result<CompressionOutcome, FlowError> {
    let program = kernel.program(scale, seed);
    let mut machine = Machine::new(&program);
    let result = machine.run_with(Backend::Compiled, 50_000_000)?;
    // Replay against the program's initial memory image so loads observe
    // the same data the kernel did.
    let mut initial = FlatMemory::new();
    for (base, bytes) in program.segments() {
        initial.load(*base as u64, bytes);
    }
    let cfg = CompressionConfig::for_platform(platform);
    let tech = platform.technology();
    run_compression_trace(
        kernel.name(),
        platform.name(),
        &result.trace,
        initial,
        codec,
        &cfg,
        &tech,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_compress::{DiffCodec, RawCodec};

    #[test]
    fn fir_saves_energy_on_both_platforms() {
        let codec = DiffCodec::new();
        for platform in [PlatformKind::VliwLike, PlatformKind::RiscLike] {
            let out = run_compression_kernel(Kernel::Fir, 96, 5, platform, &codec).unwrap();
            assert!(out.lines > 0, "no write-backs on {}", platform.name());
            assert!(out.compressed_lines > 0);
            assert!(
                out.energy_saving() > 0.0,
                "{}: saving {}",
                platform.name(),
                out.energy_saving()
            );
            assert!(out.compressed.total() < out.baseline.total());
        }
    }

    #[test]
    fn raw_codec_saves_nothing_but_costs_codec_energy() {
        let out =
            run_compression_kernel(Kernel::Fir, 48, 5, PlatformKind::RiscLike, &RawCodec::new())
                .unwrap();
        assert_eq!(out.compressed_lines, 0);
        assert_eq!(out.raw_beats, out.actual_beats);
        assert!(out.energy_saving() <= 0.0);
    }

    #[test]
    fn histogram_totals_match_lines() {
        let out = run_compression_kernel(
            Kernel::Dct8,
            16,
            2,
            PlatformKind::VliwLike,
            &DiffCodec::new(),
        )
        .unwrap();
        let total: u64 = out.size_histogram.iter().sum();
        assert_eq!(total, out.lines);
    }

    #[test]
    fn traffic_saving_consistent_with_beats() {
        let out = run_compression_kernel(
            Kernel::Fir,
            48,
            1,
            PlatformKind::VliwLike,
            &DiffCodec::new(),
        )
        .unwrap();
        let expect = 1.0 - out.actual_beats as f64 / out.raw_beats as f64;
        assert!((out.traffic_saving() - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_rejected() {
        let trace: Trace = vec![lpmem_trace::MemEvent::fetch(0)].into();
        let err = run_compression_trace(
            "x",
            "p",
            &trace,
            FlatMemory::new(),
            &DiffCodec::new(),
            &CompressionConfig::for_platform(PlatformKind::RiscLike),
            &Technology::tech180(),
        )
        .unwrap_err();
        assert!(matches!(err, FlowError::EmptyInput(_)));
    }
}
