//! The 1B.1 flow: monolithic vs. partitioned vs. clustered+partitioned
//! data memory.

use lpmem_cluster::{cluster_blocks, AddressMap, ClusterConfig, Objective};
use lpmem_energy::{AreaReport, Energy, Technology};
use lpmem_partition::sleep::{evaluate_with_sleep, SleepPolicy};
use lpmem_partition::{optimal_partition, Partition, PartitionCost};
use lpmem_trace::{BlockProfile, MemEvent, Trace};

use crate::FlowError;

/// Parameters of the partitioning flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PartitioningConfig {
    /// Profile block size in bytes (the partitioning granularity).
    pub block_size: u64,
    /// Maximum number of banks the partitioner may synthesize.
    pub max_banks: usize,
    /// Address-clustering parameters.
    pub cluster: ClusterConfig,
}

impl Default for PartitioningConfig {
    /// 2 KiB blocks, up to 8 banks, default clustering — the headline (T1)
    /// configuration.
    fn default() -> Self {
        PartitioningConfig {
            block_size: 2048,
            max_banks: 8,
            cluster: ClusterConfig::default(),
        }
    }
}

/// Result of the three-way partitioning comparison for one workload.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PartitioningOutcome {
    /// Workload label.
    pub name: String,
    /// Energy of the single-bank memory.
    pub monolithic: Energy,
    /// Energy of the optimally partitioned memory (no clustering).
    pub partitioned: Energy,
    /// Energy of the partitioned memory after address clustering,
    /// **including** the relocation-table lookup overhead.
    pub clustered: Energy,
    /// Banks chosen without clustering.
    pub partitioned_banks: usize,
    /// Banks chosen with clustering.
    pub clustered_banks: usize,
    /// Whether clustering was adopted (it is rejected when the relocation
    /// overhead outweighs the gain, as a designer would).
    pub clustering_adopted: bool,
    /// Number of profile blocks.
    pub blocks: usize,
    /// Data accesses evaluated.
    pub accesses: u64,
    /// Silicon-area breakdown of the **adopted** design: per-bank cell
    /// arrays and periphery, plus the relocation table when clustering
    /// was adopted with a non-identity map (the promoted A5 accounting).
    pub area: AreaReport,
}

impl PartitioningOutcome {
    /// Fractional energy reduction of clustering vs. plain partitioning
    /// (the paper's headline metric: avg ≈ 25%, max ≈ 57%).
    pub fn reduction_vs_partitioned(&self) -> f64 {
        self.clustered.saving_vs(self.partitioned)
    }

    /// Fractional energy reduction of plain partitioning vs. the monolith.
    pub fn partitioning_gain(&self) -> f64 {
        self.partitioned.saving_vs(self.monolithic)
    }

    /// Fractional reduction of the full flow vs. the monolith.
    pub fn reduction_vs_monolithic(&self) -> f64 {
        self.clustered.saving_vs(self.monolithic)
    }
}

/// Runs the three-way comparison on the data side of a trace.
///
/// # Errors
///
/// Returns [`FlowError::EmptyInput`] when the trace has no data accesses
/// and propagates profile-construction errors.
pub fn run_partitioning(
    name: &str,
    trace: &Trace,
    cfg: &PartitioningConfig,
    tech: &Technology,
) -> Result<PartitioningOutcome, FlowError> {
    let data = trace.data_only();
    if data.is_empty() {
        return Err(FlowError::EmptyInput("trace has no data accesses"));
    }
    let profile = BlockProfile::from_trace(&data, cfg.block_size)?;
    let cost = PartitionCost::new(tech);
    let accesses = profile.total_accesses();

    let monolithic = cost.evaluate(&profile, &Partition::monolithic(profile.num_blocks()));
    let (part_plain, eval_plain) = optimal_partition(&profile, cfg.max_banks, &cost);

    // The synthesis flow evaluates both clustering objectives and keeps the
    // cheaper design (the affinity chain trades a little dynamic energy for
    // temporal grouping, which only pays under power gating — see A4).
    let objectives: &[Objective] = match cfg.cluster.objective {
        Objective::FrequencyOnly => &[Objective::FrequencyOnly],
        Objective::FrequencyAffinity => &[Objective::FrequencyOnly, Objective::FrequencyAffinity],
    };
    let mut best: Option<(AddressMap, Partition, Energy)> = None;
    for &objective in objectives {
        let cluster_cfg = ClusterConfig {
            objective,
            ..cfg.cluster.clone()
        };
        let map = cluster_blocks(&profile, Some(&data), &cluster_cfg);
        let remapped = map.apply(&profile)?;
        let (part, eval) = optimal_partition(&remapped, cfg.max_banks, &cost);
        let total = eval.total() + map.lookup_energy(accesses, tech);
        if best.as_ref().map(|(_, _, b)| total < *b).unwrap_or(true) {
            best = Some((map, part, total));
        }
    }
    let (map_clustered, part_clustered, with_clustering) =
        best.expect("at least one objective is evaluated");

    // Adopt clustering only when it pays for its relocation table — the
    // synthesis flow would otherwise keep the plain partitioned design.
    let adopted = with_clustering < eval_plain.total();
    let (clustered, clustered_banks) = if adopted {
        (with_clustering, part_clustered.num_banks())
    } else {
        (eval_plain.total(), part_plain.num_banks())
    };

    // Area of the design the flow actually ships: the adopted banking,
    // plus the relocation table if clustering (with a real remap) won.
    let adopted_part = if adopted {
        &part_clustered
    } else {
        &part_plain
    };
    let mut area = cost.area_report(&profile, adopted_part);
    if adopted && !map_clustered.is_identity() {
        area.add("relocation.table", map_clustered.table_area_mm2(tech));
    }

    Ok(PartitioningOutcome {
        name: name.to_owned(),
        monolithic: monolithic.total(),
        partitioned: eval_plain.total(),
        clustered,
        partitioned_banks: part_plain.num_banks(),
        clustered_banks,
        clustering_adopted: adopted,
        blocks: profile.num_blocks(),
        accesses,
        area,
    })
}

/// Result of the sleep-aware three-way comparison (experiment **A4**):
/// plain partitioning vs. frequency-only clustering vs. affinity-aware
/// clustering, all evaluated with the trace-driven power-gating model.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SleepPartitioningOutcome {
    /// Workload label.
    pub name: String,
    /// Sleep-aware energy of the plain optimal partition.
    pub partitioned: Energy,
    /// Sleep-aware energy with frequency-only clustering (incl. relocation
    /// overhead).
    pub freq_only: Energy,
    /// Sleep-aware energy with affinity clustering (incl. relocation
    /// overhead).
    pub affinity: Energy,
    /// Fraction of bank-ticks asleep under each variant.
    pub sleep_fractions: [f64; 3],
}

impl SleepPartitioningOutcome {
    /// Reduction of affinity clustering vs. plain partitioning.
    pub fn affinity_reduction(&self) -> f64 {
        self.affinity.saving_vs(self.partitioned)
    }

    /// Reduction of frequency-only clustering vs. plain partitioning.
    pub fn freq_only_reduction(&self) -> f64 {
        self.freq_only.saving_vs(self.partitioned)
    }
}

/// Remaps every data event of a trace through an [`AddressMap`].
fn remap_trace(trace: &Trace, map: &AddressMap) -> Trace {
    trace
        .iter()
        .map(|ev| MemEvent {
            addr: map.remap_addr(ev.addr),
            ..*ev
        })
        .collect()
}

/// Runs the sleep-aware comparison (see [`SleepPartitioningOutcome`]).
///
/// `timeout` is the bank power-gating timeout in trace ticks.
///
/// # Errors
///
/// Returns [`FlowError::EmptyInput`] when the trace has no data accesses
/// and propagates profile-construction errors.
pub fn run_partitioning_sleep(
    name: &str,
    trace: &Trace,
    cfg: &PartitioningConfig,
    tech: &Technology,
    timeout: u64,
) -> Result<SleepPartitioningOutcome, FlowError> {
    let data = trace.data_only();
    if data.is_empty() {
        return Err(FlowError::EmptyInput("trace has no data accesses"));
    }
    let profile = BlockProfile::from_trace(&data, cfg.block_size)?;
    let cost = PartitionCost::new(tech);
    let policy = SleepPolicy::from_tech(tech, timeout);
    let accesses = profile.total_accesses();

    let (plain_part, _) = optimal_partition(&profile, cfg.max_banks, &cost);
    let plain = evaluate_with_sleep(&data, &profile, &plain_part, tech, &policy);

    let variant = |objective: Objective| -> Result<(Energy, f64), FlowError> {
        let cluster_cfg = ClusterConfig {
            objective,
            ..cfg.cluster.clone()
        };
        let map = cluster_blocks(&profile, Some(&data), &cluster_cfg);
        let remapped_profile = map.apply(&profile)?;
        let remapped_trace = remap_trace(&data, &map);
        let (part, _) = optimal_partition(&remapped_profile, cfg.max_banks, &cost);
        let eval = evaluate_with_sleep(&remapped_trace, &remapped_profile, &part, tech, &policy);
        Ok((
            eval.total() + map.lookup_energy(accesses, tech),
            eval.sleep_fraction,
        ))
    };
    let (freq_only, sf1) = variant(Objective::FrequencyOnly)?;
    let (affinity, sf2) = variant(Objective::FrequencyAffinity)?;

    Ok(SleepPartitioningOutcome {
        name: name.to_owned(),
        partitioned: plain.total(),
        freq_only,
        affinity,
        sleep_fractions: [plain.sleep_fraction, sf1, sf2],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_trace::gen::HotColdGen;

    fn scattered_trace() -> Trace {
        HotColdGen::new(1 << 17, 6, 0.92)
            .block_size(2048)
            .seed(11)
            .events(60_000)
            .collect()
    }

    #[test]
    fn clustering_wins_on_scattered_hot_set() {
        let trace = scattered_trace();
        let out = run_partitioning(
            "hotcold",
            &trace,
            &PartitioningConfig::default(),
            &Technology::tech180(),
        )
        .unwrap();
        assert!(out.partitioned < out.monolithic);
        assert!(out.clustered < out.partitioned, "{out:?}");
        assert!(
            out.reduction_vs_partitioned() > 0.10,
            "{}",
            out.reduction_vs_partitioned()
        );
    }

    #[test]
    fn empty_data_trace_is_rejected() {
        let trace: Trace = vec![lpmem_trace::MemEvent::fetch(0)].into();
        let err = run_partitioning(
            "empty",
            &trace,
            &PartitioningConfig::default(),
            &Technology::tech180(),
        )
        .unwrap_err();
        assert!(matches!(err, FlowError::EmptyInput(_)));
    }

    #[test]
    fn outcome_metrics_are_consistent() {
        let trace = scattered_trace();
        let out = run_partitioning(
            "hotcold",
            &trace,
            &PartitioningConfig::default(),
            &Technology::tech180(),
        )
        .unwrap();
        let r = out.reduction_vs_partitioned();
        let expect = 1.0 - out.clustered.as_pj() / out.partitioned.as_pj();
        assert!((r - expect).abs() < 1e-12);
        assert!(out.reduction_vs_monolithic() >= out.partitioning_gain());
    }

    #[test]
    fn outcome_carries_adopted_area() {
        let trace = scattered_trace();
        let out = run_partitioning(
            "hotcold",
            &trace,
            &PartitioningConfig::default(),
            &Technology::tech180(),
        )
        .unwrap();
        assert!(out.area.component("bank.cells") > 0.0);
        assert!(out.area.component("bank.periphery") > 0.0);
        // On this workload clustering wins with a real remap, so the
        // relocation table must be accounted for.
        assert!(out.clustering_adopted);
        assert!(out.area.component("relocation.table") > 0.0, "{}", out.area);
        assert!(out.area.total_mm2() > out.area.component("bank.cells"));
    }

    #[test]
    fn sleep_flow_reports_sleep_fractions() {
        let trace = scattered_trace();
        let out = run_partitioning_sleep(
            "hotcold",
            &trace,
            &PartitioningConfig::default(),
            &Technology::tech180(),
            32,
        )
        .unwrap();
        // Clustered variants must not lose to plain partitioning here.
        assert!(out.affinity <= out.partitioned, "{out:?}");
        assert!(out
            .sleep_fractions
            .iter()
            .all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn works_on_kernel_traces() {
        let run = lpmem_isa::Kernel::Histogram.run(16, 3).unwrap();
        let out = run_partitioning(
            "histogram",
            &run.trace,
            &PartitioningConfig::default(),
            &Technology::tech180(),
        )
        .unwrap();
        assert!(out.clustered <= out.partitioned);
        assert!(out.accesses > 0);
    }
}
