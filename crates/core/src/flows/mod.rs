//! The evaluation flows: one per Session 1B paper, plus the combined
//! whole-system study.

pub mod buscoding;
pub mod cmp;
pub mod compression;
pub mod partitioning;
pub mod scheduling;
pub mod spec;
pub mod system;

pub use cmp::{cmp_core_runs, run_cmp};
pub use spec::{data_memory_exposure, FlowSpec, FlowSummary, TechNode, VariantSpec};

// Reliability surface, re-exported so harness crates reach the fault
// axis through the same uniform flow module as everything else.
pub use lpmem_fault::{
    run_campaign, BankExposure, FaultExposure, FaultSpec, Protection, ReliabilityReport,
};

// CMP scenario surface, re-exported the same way.
pub use lpmem_cmp::{CmpReport, CmpSpec, LlcCodec};
