//! The evaluation flows: one per Session 1B paper, plus the combined
//! whole-system study.

pub mod buscoding;
pub mod compression;
pub mod partitioning;
pub mod scheduling;
pub mod spec;
pub mod system;

pub use spec::{FlowSpec, FlowSummary, TechNode, VariantSpec};
