//! Enumerable flow specifications for grid-driven experiment sweeps.
//!
//! The evaluation flows ([`partitioning`](crate::flows::partitioning),
//! [`compression`](crate::flows::compression), …) each have their own
//! argument and outcome types. A sweep engine needs a uniform surface
//! instead: a closed set of [`FlowSpec`] values it can enumerate into a
//! grid, a [`VariantSpec`] bundling every per-flow knob a grid axis may
//! vary, and a flat [`FlowSummary`] every flow can report — the common
//! denominator (baseline vs. optimized energy plus an event count) that a
//! metrics layer or machine-readable report can aggregate without knowing
//! the flow.

use lpmem_compress::DiffCodec;
use lpmem_energy::{Energy, Technology};
use lpmem_fault::{run_campaign, BankExposure, FaultExposure, FaultSpec, ReliabilityReport};
use lpmem_isa::Kernel;
use lpmem_partition::sleep::{evaluate_with_sleep, SleepPolicy};
use lpmem_partition::{optimal_partition, PartitionCost};
use lpmem_sched::SchedPlatform;
use lpmem_trace::{BlockProfile, Trace};

use crate::flows::buscoding::run_buscoding;
use crate::flows::compression::{run_compression_trace, CompressionConfig, PlatformKind};
use crate::flows::partitioning::{run_partitioning, PartitioningConfig};
use crate::flows::scheduling::{dsp_pipeline_app, run_scheduling};
use crate::flows::system::run_system_with_tech;
use crate::workloads::kernel_trace_and_image;
use crate::FlowError;

/// Bank power-gating timeout (trace ticks) used when deriving fault
/// exposure — matches the sleep-aware partitioning experiments.
const FAULT_SLEEP_TIMEOUT: u64 = 32;

// The sweep grid's technology axis. Promoted to `lpmem-energy` so crates
// below the flow layer (notably `lpmem-cmp`) can name nodes; re-exported
// here so every existing import path keeps working.
pub use lpmem_energy::TechNode;

/// One evaluation flow, enumerable and dispatchable by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FlowSpec {
    /// 1B.1: memory partitioning ± address clustering.
    Partitioning,
    /// 1B.2: D-cache write-back compression.
    Compression,
    /// 1B.3: instruction-bus functional encoding.
    BusCoding,
    /// 1B.4: two-level data scheduling.
    Scheduling,
    /// Capstone: bus encoding + compression on one platform.
    System,
}

impl FlowSpec {
    /// Every flow, in grid order.
    pub const ALL: [FlowSpec; 5] = [
        FlowSpec::Partitioning,
        FlowSpec::Compression,
        FlowSpec::BusCoding,
        FlowSpec::Scheduling,
        FlowSpec::System,
    ];

    /// The flow's key in grid syntax and reports.
    pub fn name(self) -> &'static str {
        match self {
            FlowSpec::Partitioning => "partitioning",
            FlowSpec::Compression => "compression",
            FlowSpec::BusCoding => "buscoding",
            FlowSpec::Scheduling => "scheduling",
            FlowSpec::System => "system",
        }
    }

    /// Parses a flow key (case-insensitive).
    pub fn parse(s: &str) -> Option<FlowSpec> {
        FlowSpec::ALL
            .into_iter()
            .find(|f| f.name() == s.trim().to_ascii_lowercase())
    }

    /// Runs this flow on one grid point and reports the flat summary.
    ///
    /// The [`Scheduling`](FlowSpec::Scheduling) flow has no kernel input;
    /// it treats the kernel axis as a replicate index (the task seed alone
    /// distinguishes its runs).
    ///
    /// # Errors
    ///
    /// Propagates the underlying flow's error.
    pub fn run(
        self,
        kernel: Kernel,
        scale: u32,
        seed: u64,
        tech: TechNode,
        variant: &VariantSpec,
    ) -> Result<FlowSummary, FlowError> {
        let technology = tech.technology();
        match self {
            FlowSpec::Partitioning => {
                let run = kernel.run(scale, seed)?;
                let cfg = PartitioningConfig {
                    block_size: variant.block_size,
                    max_banks: variant.max_banks,
                    ..Default::default()
                };
                let out = run_partitioning(kernel.name(), &run.trace, &cfg, &technology)?;
                Ok(self.summary(kernel.name(), out.monolithic, out.clustered, out.accesses))
            }
            FlowSpec::Compression => {
                let (trace, image) = kernel_trace_and_image(kernel, scale, seed)?;
                let cfg = CompressionConfig {
                    cache: variant.platform.cache_config(),
                    threshold: variant.threshold,
                    flush_at_end: true,
                };
                let out = run_compression_trace(
                    kernel.name(),
                    variant.platform.name(),
                    &trace,
                    image,
                    &DiffCodec::new(),
                    &cfg,
                    &technology,
                )?;
                Ok(self.summary(
                    kernel.name(),
                    out.baseline.total(),
                    out.compressed.total(),
                    out.lines,
                ))
            }
            FlowSpec::BusCoding => {
                let run = kernel.run(scale, seed)?;
                let out = run_buscoding(kernel.name(), &run.trace, variant.regions, &technology)?;
                Ok(self.summary(
                    kernel.name(),
                    out.raw_energy,
                    out.encoded_energy,
                    out.fetches,
                ))
            }
            FlowSpec::Scheduling => {
                let app = dsp_pipeline_app(variant.stages, variant.iterations, seed)?;
                let platform = SchedPlatform::new(&technology, variant.l0_bytes, 16 << 10);
                let name = format!("dsp-{}x{}", variant.stages, variant.iterations);
                let out = run_scheduling(&name, &app, &platform)?;
                Ok(self.summary(
                    &name,
                    out.naive,
                    out.greedy,
                    out.contexts as u64 * out.iterations,
                ))
            }
            FlowSpec::System => {
                let out = run_system_with_tech(
                    kernel,
                    scale,
                    seed,
                    variant.platform,
                    &DiffCodec::new(),
                    variant.regions,
                    &technology,
                )?;
                Ok(self.summary(
                    kernel.name(),
                    out.baseline.total(),
                    out.optimized.total(),
                    out.fetches,
                ))
            }
        }
    }

    /// Runs this flow under a reliability configuration: the ordinary
    /// flow result plus a deterministic fault campaign over the flow's
    /// data-memory exposure, with the protection's encode/decode energy
    /// charged onto the optimized design.
    ///
    /// A disabled `fault` spec takes the exact [`run`](FlowSpec::run)
    /// path — the differential guarantee every pre-fault golden report
    /// rests on.
    ///
    /// # Errors
    ///
    /// Propagates the underlying flow's error.
    pub fn run_with_faults(
        self,
        kernel: Kernel,
        scale: u32,
        seed: u64,
        tech: TechNode,
        variant: &VariantSpec,
        fault: &FaultSpec,
    ) -> Result<FlowSummary, FlowError> {
        let mut summary = self.run(kernel, scale, seed, tech, variant)?;
        if !fault.enabled() {
            return Ok(summary);
        }
        let technology = tech.technology();
        let exposure = match self {
            // The scheduling flow has no kernel trace; its L0 scratchpad
            // is the exposed memory, busy for the whole run.
            FlowSpec::Scheduling => {
                FaultExposure::single_bank(variant.l0_bytes / 4, summary.events, summary.events)
            }
            _ => {
                let run = kernel.run(scale, seed)?;
                data_memory_exposure(&run.trace, variant, &technology)?
            }
        };
        summary.reliability = Some(run_campaign(fault, &technology, &exposure, seed));
        summary.optimized += fault
            .protection
            .access_overhead(&technology, exposure.accesses());
        Ok(summary)
    }

    /// Runs this flow under both scenario axes: the reliability
    /// configuration of [`run_with_faults`](FlowSpec::run_with_faults)
    /// and the chip-multiprocessor scenario of
    /// [`run_cmp`](crate::flows::cmp::run_cmp).
    ///
    /// A disabled `cmp` spec takes the exact
    /// [`run_with_faults`](FlowSpec::run_with_faults) path — the
    /// differential guarantee every pre-CMP golden report rests on. An
    /// enabled spec applies only to the [`System`](FlowSpec::System)
    /// flow (the only one modeling the full cache platform the LLC sits
    /// behind); the other flows ignore it the way the scheduling flow
    /// ignores the kernel axis.
    ///
    /// # Errors
    ///
    /// Propagates the underlying flow's error.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_cmp(
        self,
        kernel: Kernel,
        scale: u32,
        seed: u64,
        tech: TechNode,
        variant: &VariantSpec,
        fault: &FaultSpec,
        cmp: &lpmem_cmp::CmpSpec,
    ) -> Result<FlowSummary, FlowError> {
        if !cmp.enabled() || self != FlowSpec::System {
            return self.run_with_faults(kernel, scale, seed, tech, variant, fault);
        }
        crate::flows::cmp::run_cmp(kernel, scale, seed, tech, variant, fault, cmp)
    }

    fn summary(
        self,
        workload: &str,
        baseline: Energy,
        optimized: Energy,
        events: u64,
    ) -> FlowSummary {
        FlowSummary {
            flow: self,
            workload: workload.to_owned(),
            baseline,
            optimized,
            events,
            reliability: None,
            cmp: None,
        }
    }
}

/// Derives the fault exposure of a trace's data memory: the trace is
/// profiled and partitioned exactly like the partitioning flow (same
/// block size and bank budget), then replayed under the sleep model so
/// each bank's drowsy residency — the retention-failure driver — is an
/// exact integer tick count.
///
/// # Errors
///
/// Returns [`FlowError::EmptyInput`] when the trace has no data accesses
/// and propagates profile-construction errors.
pub fn data_memory_exposure(
    trace: &Trace,
    variant: &VariantSpec,
    tech: &Technology,
) -> Result<FaultExposure, FlowError> {
    let data = trace.data_only();
    if data.is_empty() {
        return Err(FlowError::EmptyInput("trace has no data accesses"));
    }
    let profile = BlockProfile::from_trace(&data, variant.block_size)?;
    let cost = PartitionCost::new(tech);
    let (partition, _) = optimal_partition(&profile, variant.max_banks, &cost);
    let policy = SleepPolicy::from_tech(tech, FAULT_SLEEP_TIMEOUT);
    let sleep = evaluate_with_sleep(&data, &profile, &partition, tech, &policy);
    let block_words = profile.block_size() / 4;
    let counts = profile.counts();
    let write_counts = profile.write_counts();
    let mut banks = Vec::with_capacity(partition.num_banks());
    for (bi, range) in partition.banks().enumerate() {
        let reads: u64 = range.clone().map(|b| counts[b] - write_counts[b]).sum();
        let writes: u64 = range.clone().map(|b| write_counts[b]).sum();
        banks.push(BankExposure {
            words: range.len() as u64 * block_words,
            active_ticks: sleep.total_ticks - sleep.bank_sleep_ticks[bi],
            sleep_ticks: sleep.bank_sleep_ticks[bi],
            reads,
            writes,
        });
    }
    Ok(FaultExposure { domain: 0, banks })
}

impl std::fmt::Display for FlowSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every per-flow knob a sweep grid's variant axis may vary, bundled with
/// a display name. Flows read only the fields they understand.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VariantSpec {
    /// Variant label in grid syntax and reports.
    pub name: String,
    /// Cache platform preset (compression, system).
    pub platform: PlatformKind,
    /// Bank budget (partitioning).
    pub max_banks: usize,
    /// Profile block size in bytes (partitioning).
    pub block_size: u64,
    /// Compression threshold as a line-size fraction (compression).
    pub threshold: f64,
    /// Reprogrammable bus-encoder regions (buscoding, system).
    pub regions: usize,
    /// L0 scratchpad capacity in bytes (scheduling).
    pub l0_bytes: u64,
    /// Pipeline stages of the generated application (scheduling).
    pub stages: usize,
    /// Loop iterations of the generated application (scheduling).
    pub iterations: u64,
}

impl Default for VariantSpec {
    /// The headline configuration of every experiment: 8 banks over 2 KiB
    /// blocks, VLIW cache platform at threshold 0.75, 4 encoder regions,
    /// 1 KiB L0 under a 4-stage 32-frame pipeline.
    fn default() -> Self {
        VariantSpec {
            name: "default".to_owned(),
            platform: PlatformKind::VliwLike,
            max_banks: 8,
            block_size: 2048,
            threshold: 0.75,
            regions: 4,
            l0_bytes: 1 << 10,
            stages: 4,
            iterations: 32,
        }
    }
}

impl VariantSpec {
    /// The resource-constrained counterpoint to
    /// [`default`](VariantSpec::default): half the banks, the paper's
    /// strict half-line compression slots on the RISC platform, more
    /// encoder regions, and a smaller L0 — the corner that stresses every
    /// flow's trade-off logic.
    pub fn tight() -> Self {
        VariantSpec {
            name: "tight".to_owned(),
            platform: PlatformKind::RiscLike,
            max_banks: 4,
            block_size: 1024,
            threshold: 0.5,
            regions: 8,
            l0_bytes: 512,
            stages: 4,
            iterations: 32,
        }
    }

    /// Looks a built-in variant up by name (`"default"` or `"tight"`).
    pub fn parse(s: &str) -> Option<VariantSpec> {
        match s.trim().to_ascii_lowercase().as_str() {
            "default" => Some(VariantSpec::default()),
            "tight" => Some(VariantSpec::tight()),
            _ => None,
        }
    }
}

/// The flat result every flow reports to the sweep engine: the baseline
/// and optimized energies of its headline comparison plus the number of
/// events (accesses, lines, fetches, context activations) it evaluated.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlowSummary {
    /// The flow that produced this summary.
    pub flow: FlowSpec,
    /// Workload label (kernel name or generated-app label).
    pub workload: String,
    /// Energy of the unoptimized design.
    pub baseline: Energy,
    /// Energy of the optimized design.
    pub optimized: Energy,
    /// Events evaluated (the flow's natural unit of work).
    pub events: u64,
    /// Fault-campaign outcome when the flow ran under a reliability
    /// configuration ([`FlowSpec::run_with_faults`]); `None` on the
    /// ordinary path, keeping pre-fault reports byte-identical.
    pub reliability: Option<ReliabilityReport>,
    /// CMP outcome counters when the flow ran under an enabled CMP spec
    /// ([`FlowSpec::run_with_cmp`]); `None` everywhere else, keeping
    /// pre-CMP reports byte-identical.
    pub cmp: Option<lpmem_cmp::CmpReport>,
}

impl FlowSummary {
    /// Fractional energy saving of the optimized design.
    pub fn saving(&self) -> f64 {
        self.optimized.saving_vs(self.baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for flow in FlowSpec::ALL {
            assert_eq!(FlowSpec::parse(flow.name()), Some(flow));
        }
        for tech in TechNode::ALL {
            assert_eq!(TechNode::parse(tech.name()), Some(tech));
        }
        assert_eq!(FlowSpec::parse("nonsense"), None);
        assert_eq!(TechNode::parse("t65"), None);
        assert_eq!(
            VariantSpec::parse("tight").map(|v| v.name),
            Some("tight".to_owned())
        );
        assert!(VariantSpec::parse("nonsense").is_none());
    }

    #[test]
    fn every_flow_runs_and_saves_energy() {
        let variant = VariantSpec::default();
        for flow in FlowSpec::ALL {
            let out = flow
                .run(Kernel::Fir, 48, 2003, TechNode::T180, &variant)
                .unwrap_or_else(|e| panic!("{flow} failed: {e}"));
            assert_eq!(out.flow, flow);
            assert!(out.events > 0, "{flow}: no events");
            assert!(out.baseline > Energy::ZERO, "{flow}: zero baseline");
            assert!(
                out.optimized <= out.baseline,
                "{flow}: optimized {} worse than baseline {}",
                out.optimized,
                out.baseline
            );
        }
    }

    #[test]
    fn flow_runs_are_deterministic_per_seed() {
        let variant = VariantSpec::tight();
        let a = FlowSpec::Compression
            .run(Kernel::Dct8, 16, 42, TechNode::T130, &variant)
            .unwrap();
        let b = FlowSpec::Compression
            .run(Kernel::Dct8, 16, 42, TechNode::T130, &variant)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn disabled_faults_are_byte_identical_to_plain_runs() {
        // The differential guarantee: a disabled fault spec must take the
        // exact same path as `run` — field-for-field equal summaries.
        let variant = VariantSpec::default();
        for flow in FlowSpec::ALL {
            let plain = flow
                .run(Kernel::Fir, 48, 2003, TechNode::T180, &variant)
                .unwrap();
            let off = flow
                .run_with_faults(
                    Kernel::Fir,
                    48,
                    2003,
                    TechNode::T180,
                    &variant,
                    &lpmem_fault::FaultSpec::off(),
                )
                .unwrap();
            assert_eq!(plain, off, "{flow}");
            assert!(off.reliability.is_none());
        }
    }

    #[test]
    fn fault_runs_report_reliability_and_charge_protection() {
        use lpmem_fault::Protection;
        let variant = VariantSpec::default();
        for flow in FlowSpec::ALL {
            let unprotected = flow
                .run_with_faults(
                    Kernel::Fir,
                    48,
                    2003,
                    TechNode::T90,
                    &variant,
                    &lpmem_fault::FaultSpec::accelerated(Protection::None),
                )
                .unwrap();
            let secded = flow
                .run_with_faults(
                    Kernel::Fir,
                    48,
                    2003,
                    TechNode::T90,
                    &variant,
                    &lpmem_fault::FaultSpec::accelerated(Protection::Secded),
                )
                .unwrap();
            let ur = unprotected.reliability.expect("campaign ran");
            let sr = secded.reliability.expect("campaign ran");
            // The scheduling flow's L0 scratchpad is tiny and short-lived;
            // its campaign legitimately observes ~0 faults at this rate.
            if flow != FlowSpec::Scheduling {
                assert!(ur.injected > 0, "{flow}: no faults injected");
            }
            assert!(
                sr.silent < ur.silent || ur.silent == 0,
                "{flow}: secded did not reduce silent corruption ({sr:?} vs {ur:?})"
            );
            // ECC costs real energy: the protected run must be pricier.
            assert!(
                secded.optimized > unprotected.optimized,
                "{flow}: secded energy overhead missing"
            );
        }
    }

    #[test]
    fn exposure_reflects_trace_structure() {
        let run = Kernel::Fir.run(48, 2003).unwrap();
        let exposure =
            data_memory_exposure(&run.trace, &VariantSpec::default(), &Technology::tech180())
                .unwrap();
        assert!(!exposure.banks.is_empty());
        let data_events = run.trace.data_only().len() as u64;
        for bank in &exposure.banks {
            assert!(bank.words > 0);
            assert_eq!(bank.active_ticks + bank.sleep_ticks, data_events);
        }
        let accesses: u64 = exposure.accesses();
        assert_eq!(accesses, data_events, "every data event lands in a bank");
    }

    #[test]
    fn technology_axis_reaches_every_flow() {
        // The same task at two nodes must price differently — the grid's
        // technology axis is real for each flow, including the system flow
        // (which historically pinned its platform's own node).
        let variant = VariantSpec::default();
        for flow in FlowSpec::ALL {
            let old = flow
                .run(Kernel::Histogram, 24, 7, TechNode::T180, &variant)
                .unwrap();
            let new = flow
                .run(Kernel::Histogram, 24, 7, TechNode::T90, &variant)
                .unwrap();
            assert_ne!(
                old.baseline, new.baseline,
                "{flow}: tech axis had no effect"
            );
        }
    }
}
