//! The capstone flow: both cache-platform optimizations applied together.
//!
//! The 1B session's techniques attack different components of the same
//! SoC's memory system: instruction-bus encoding (1B.3) cuts the fetch
//! path, write-back compression (1B.2) cuts the off-chip data path. This
//! flow evaluates one kernel on the full platform — instruction bus +
//! D-cache + off-chip memory — with each optimization off and on, and
//! reports the combined saving. It answers the question the session
//! implicitly poses: *how much of an embedded SoC's memory-system energy
//! do these techniques recover together?*

use lpmem_buscode::RegionEncoder;
use lpmem_compress::LineCodec;
use lpmem_energy::{BusModel, Energy, EnergyReport};
use lpmem_isa::Kernel;
use lpmem_trace::AccessKind;

use crate::flows::compression::{run_compression_trace, CompressionConfig, PlatformKind};
use crate::workloads::kernel_trace_and_image;
use crate::FlowError;

/// Result of the whole-system study for one kernel.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemOutcome {
    /// Workload label.
    pub name: String,
    /// Platform label.
    pub platform: String,
    /// Baseline breakdown: `ibus`, `dcache`, `offchip.*`.
    pub baseline: EnergyReport,
    /// Optimized breakdown: encoded `ibus`, compressed `offchip.*` plus
    /// `codec`.
    pub optimized: EnergyReport,
    /// Instruction fetches observed.
    pub fetches: u64,
    /// Bus-encoding regions used.
    pub regions: usize,
}

impl SystemOutcome {
    /// Combined fractional energy saving.
    pub fn saving(&self) -> f64 {
        self.optimized.total().saving_vs(self.baseline.total())
    }

    /// Saving on the instruction-bus component alone.
    pub fn ibus_saving(&self) -> f64 {
        self.optimized
            .component("ibus")
            .saving_vs(self.baseline.component("ibus"))
    }
}

/// Runs a kernel and evaluates the platform with bus encoding and
/// write-back compression applied together, at the platform's native
/// technology node.
///
/// # Errors
///
/// Propagates kernel and flow errors.
pub fn run_system(
    kernel: Kernel,
    scale: u32,
    seed: u64,
    platform: PlatformKind,
    codec: &dyn LineCodec,
    regions: usize,
) -> Result<SystemOutcome, FlowError> {
    run_system_with_tech(
        kernel,
        scale,
        seed,
        platform,
        codec,
        regions,
        &platform.technology(),
    )
}

/// [`run_system`] with an explicit technology node — the entry point the
/// sweep engine uses so its technology axis applies to every flow.
///
/// # Errors
///
/// Propagates kernel and flow errors.
pub fn run_system_with_tech(
    kernel: Kernel,
    scale: u32,
    seed: u64,
    platform: PlatformKind,
    codec: &dyn LineCodec,
    regions: usize,
    tech: &lpmem_energy::Technology,
) -> Result<SystemOutcome, FlowError> {
    let (trace, image) = kernel_trace_and_image(kernel, scale, seed)?;
    let tech = tech.clone();

    // Data side: the compression flow produces both baseline and optimized
    // D-cache + off-chip numbers.
    let cfg = CompressionConfig::for_platform(platform);
    let compression = run_compression_trace(
        kernel.name(),
        platform.name(),
        &trace,
        image,
        codec,
        &cfg,
        &tech,
    )?;

    // Instruction side: transitions of the raw and encoded fetch streams.
    let stream: Vec<(u64, u32)> = trace
        .iter()
        .filter(|e| e.kind == AccessKind::InstrFetch)
        .map(|e| (e.addr, e.value))
        .collect();
    if stream.is_empty() {
        return Err(FlowError::EmptyInput("trace has no instruction fetches"));
    }
    let encoder = RegionEncoder::train(&stream, regions);
    let enc = encoder.evaluate(&stream);
    let bus = BusModel::onchip(&tech, 32);

    let mut baseline = compression.baseline.clone();
    baseline.add("ibus", bus.energy_of(enc.raw_transitions));
    let mut optimized = compression.compressed.clone();
    optimized.add("ibus", bus.energy_of(enc.encoded_transitions));
    // One extra XOR layer on each end of the fetch path. A gate's output
    // only switches when a line it drives toggles, so the layer's energy is
    // proportional to the line transitions on its input (encoder) and
    // output (decoder) sides — at ~2 fF of gate load vs. ~0.5 pF of wire,
    // a factor of ~0.004 of the line energy per side.
    let gate_pj = 0.004 * bus.transition_energy().as_pj();
    optimized.add(
        "ibus.codec",
        Energy::from_pj(gate_pj * (enc.raw_transitions + enc.encoded_transitions) as f64),
    );

    Ok(SystemOutcome {
        name: kernel.name().to_owned(),
        platform: platform.name().to_owned(),
        baseline,
        optimized,
        fetches: stream.len() as u64,
        regions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_compress::DiffCodec;

    #[test]
    fn combined_optimizations_beat_baseline() {
        let out = run_system(
            Kernel::Fir,
            256,
            3,
            PlatformKind::VliwLike,
            &DiffCodec::new(),
            4,
        )
        .unwrap();
        assert!(out.saving() > 0.05, "combined saving {}", out.saving());
        assert!(out.ibus_saving() > 0.3, "ibus saving {}", out.ibus_saving());
        // The combined report covers both subsystems.
        assert!(out.baseline.component("ibus") > Energy::ZERO);
        assert!(out.baseline.component("dcache") > Energy::ZERO);
    }

    #[test]
    fn combined_saving_exceeds_each_alone() {
        let out = run_system(
            Kernel::Dct8,
            96,
            1,
            PlatformKind::VliwLike,
            &DiffCodec::new(),
            4,
        )
        .unwrap();
        // Energy saved on the ibus plus energy saved off-chip both show up.
        let ibus_saved = out.baseline.component("ibus") - out.optimized.component("ibus");
        let off_saved = (out.baseline.component("offchip.fill")
            + out.baseline.component("offchip.writeback"))
            - (out.optimized.component("offchip.fill")
                + out.optimized.component("offchip.writeback"));
        assert!(ibus_saved > Energy::ZERO);
        assert!(off_saved > Energy::ZERO);
    }
}
