//! Umbrella API of the `lpmem` workspace: ready-made evaluation *flows*
//! that tie the substrates (traces, TinyRISC, caches, energy models) to the
//! four DATE 2003 Session 1B optimizations.
//!
//! | Flow | Paper | Entry point |
//! |------|-------|-------------|
//! | Memory partitioning ± address clustering | 1B.1 | [`flows::partitioning::run_partitioning`] |
//! | Write-back data compression | 1B.2 | [`flows::compression::run_compression_kernel`] |
//! | Instruction-bus functional encoding | 1B.3 | [`flows::buscoding::run_buscoding`] |
//! | Two-level data scheduling | 1B.4 | [`flows::scheduling::run_scheduling`] |
//!
//! Each flow returns an *outcome* struct carrying the baseline and the
//! optimized energy (or transition) numbers plus the derived savings — the
//! rows the experiment harness prints.
//!
//! # Example: the 1B.1 headline experiment on one kernel
//!
//! ```
//! use lpmem_core::flows::partitioning::{run_partitioning, PartitioningConfig};
//! use lpmem_energy::Technology;
//! use lpmem_isa::Kernel;
//!
//! let run = Kernel::Histogram.run(16, 1)?;
//! let outcome = run_partitioning(
//!     "histogram",
//!     &run.trace,
//!     &PartitioningConfig::default(),
//!     &Technology::tech180(),
//! )?;
//! assert!(outcome.clustered <= outcome.partitioned);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod flows;
pub mod workloads;

pub use workloads::{DeviceArchetype, WorkloadMix};

/// Errors surfaced by the evaluation flows.
#[derive(Debug)]
pub enum FlowError {
    /// Trace/profile construction failed.
    Trace(lpmem_trace::TraceError),
    /// Cache configuration was invalid.
    Mem(lpmem_mem::MemError),
    /// Kernel assembly or execution failed.
    Isa(lpmem_isa::IsaError),
    /// Scheduling specification or evaluation failed.
    Sched(lpmem_sched::SchedError),
    /// The flow's input was unusable (e.g. a trace with no data accesses).
    EmptyInput(&'static str),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Trace(e) => write!(f, "trace error: {e}"),
            FlowError::Mem(e) => write!(f, "memory error: {e}"),
            FlowError::Isa(e) => write!(f, "isa error: {e}"),
            FlowError::Sched(e) => write!(f, "scheduling error: {e}"),
            FlowError::EmptyInput(what) => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Trace(e) => Some(e),
            FlowError::Mem(e) => Some(e),
            FlowError::Isa(e) => Some(e),
            FlowError::Sched(e) => Some(e),
            FlowError::EmptyInput(_) => None,
        }
    }
}

impl From<lpmem_trace::TraceError> for FlowError {
    fn from(e: lpmem_trace::TraceError) -> Self {
        FlowError::Trace(e)
    }
}

impl From<lpmem_mem::MemError> for FlowError {
    fn from(e: lpmem_mem::MemError) -> Self {
        FlowError::Mem(e)
    }
}

impl From<lpmem_isa::IsaError> for FlowError {
    fn from(e: lpmem_isa::IsaError) -> Self {
        FlowError::Isa(e)
    }
}

impl From<lpmem_sched::SchedError> for FlowError {
    fn from(e: lpmem_sched::SchedError) -> Self {
        FlowError::Sched(e)
    }
}
