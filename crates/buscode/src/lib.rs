//! Application-specific instruction-memory bus encoding: the core idea of
//! DATE 2003 1B.3 (*"Power Efficiency through Application-Specific
//! Instruction Memory Transformations"*, P. Petrov, A. Orailoglu).
//!
//! The instruction-fetch bus toggles on every cycle and is one of the widest
//! high-activity nets in an embedded SoC. Dictionary-based encodings save
//! transitions but add a lookup to the fetch path. 1B.3 instead restricts
//! itself to **functional transformations implementable with a single gate
//! per bit line** — each encoded bit is the original bit, optionally XOR-ed
//! with one lower-numbered bit line ([`XorTransform`]) — and makes the
//! transform **reprogrammable per code region** so it can track each
//! region's instruction statistics.
//!
//! Because the transform is linear over GF(2) and unit-lower-triangular, it
//! is always invertible, and the transition count of an encoded stream
//! depends only on the XOR-differences of consecutive words. That makes the
//! per-region optimization *exact within the family*: each output bit can be
//! chosen independently ([`XorTransform::train`]).
//!
//! # Example
//!
//! ```
//! use lpmem_buscode::{BusInvert, RegionEncoder};
//!
//! // A fetch stream whose bits 0 and 1 always toggle together.
//! let stream: Vec<(u64, u32)> =
//!     (0..100u32).map(|i| (4 * i as u64, if i % 2 == 0 { 0b00 } else { 0b11 })).collect();
//! let enc = RegionEncoder::train(&stream, 1);
//! let report = enc.evaluate(&stream);
//! // XOR-ing bit 1 with bit 0 makes line 1 constant: half the transitions.
//! assert_eq!(report.encoded_transitions, report.raw_transitions / 2);
//! // Bus-invert cannot exploit correlation, only magnitude.
//! assert!(report.encoded_transitions < BusInvert::transitions(&stream));
//! ```

#![warn(missing_docs)]

pub mod addrbus;

/// A unit-lower-triangular XOR network over 32 bus lines.
///
/// Encoded bit `i` is `in_i ^ in_{pair[i]}` when `pair[i]` is set (and
/// `pair[i] < i`), else `in_i`. A per-line inversion mask is supported for
/// completeness; it cancels out of transition counts but documents the full
/// hardware family.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct XorTransform {
    pair: [Option<u8>; 32],
    invert: u32,
}

impl Default for XorTransform {
    fn default() -> Self {
        XorTransform::identity()
    }
}

impl XorTransform {
    /// The identity transform.
    pub fn identity() -> Self {
        XorTransform {
            pair: [None; 32],
            invert: 0,
        }
    }

    /// Builds a transform from explicit pairings.
    ///
    /// # Panics
    ///
    /// Panics if any `pair[i]` is not strictly less than `i` (the
    /// lower-triangular property that guarantees invertibility).
    pub fn new(pair: [Option<u8>; 32], invert: u32) -> Self {
        for (i, p) in pair.iter().enumerate() {
            if let Some(j) = *p {
                assert!(
                    (j as usize) < i,
                    "pair[{i}] = {j} violates lower-triangularity"
                );
            }
        }
        XorTransform { pair, invert }
    }

    /// Encodes one word.
    pub fn encode(&self, word: u32) -> u32 {
        let mut out = 0u32;
        for i in 0..32 {
            let mut bit = (word >> i) & 1;
            if let Some(j) = self.pair[i] {
                bit ^= (word >> j) & 1;
            }
            out |= bit << i;
        }
        out ^ self.invert
    }

    /// Decodes one word (exact inverse of [`encode`](Self::encode)).
    pub fn decode(&self, word: u32) -> u32 {
        let w = word ^ self.invert;
        let mut out = 0u32;
        // Lower-triangular: decode bits in ascending order.
        for i in 0..32 {
            let mut bit = (w >> i) & 1;
            if let Some(j) = self.pair[i] {
                bit ^= (out >> j) & 1; // already-decoded original bit
            }
            out |= bit << i;
        }
        out
    }

    /// `true` when the transform is the identity.
    pub fn is_identity(&self) -> bool {
        self.invert == 0 && self.pair.iter().all(Option::is_none)
    }

    /// Number of XOR gates the transform costs in hardware.
    pub fn gate_count(&self) -> usize {
        self.pair.iter().filter(|p| p.is_some()).count() + self.invert.count_ones() as usize
    }

    /// Trains the transition-optimal transform (within the family) for a
    /// word stream.
    ///
    /// The transition count of the encoded stream is
    /// `Σ_t Σ_i (d_t,i ⊕ d_t,pair[i])` where `d_t` is the XOR-difference of
    /// consecutive words, so each bit's pairing is chosen independently and
    /// the result is exact, not heuristic.
    pub fn train(words: &[u32]) -> Self {
        let deltas: Vec<u32> = words.windows(2).map(|w| w[0] ^ w[1]).collect();
        Self::train_on_deltas(&deltas)
    }

    /// Trains from precomputed consecutive-word XOR differences.
    pub fn train_on_deltas(deltas: &[u32]) -> Self {
        let mut pair = [None; 32];
        if deltas.is_empty() {
            return XorTransform { pair, invert: 0 };
        }
        for (i, slot) in pair.iter_mut().enumerate().skip(1) {
            // Cost of leaving bit i alone.
            let base: u64 = deltas.iter().map(|d| ((d >> i) & 1) as u64).sum();
            let mut best = base;
            let mut best_j = None;
            for j in 0..i {
                let cost: u64 = deltas
                    .iter()
                    .map(|d| (((d >> i) ^ (d >> j)) & 1) as u64)
                    .sum();
                if cost < best {
                    best = cost;
                    best_j = Some(j as u8);
                }
            }
            *slot = best_j;
        }
        XorTransform { pair, invert: 0 }
    }
}

/// Counts bit transitions between consecutive words.
pub fn transitions(words: impl IntoIterator<Item = u32>) -> u64 {
    let mut it = words.into_iter();
    let Some(mut prev) = it.next() else { return 0 };
    let mut total = 0u64;
    for w in it {
        total += (prev ^ w).count_ones() as u64;
        prev = w;
    }
    total
}

/// The classic bus-invert baseline: one extra line signals whole-word
/// inversion whenever more than half the lines would toggle.
#[derive(Debug, Clone, Copy, Default)]
pub struct BusInvert;

impl BusInvert {
    /// Transitions of a fetch stream under 32-bit bus-invert, counting the
    /// invert line itself.
    pub fn transitions(stream: &[(u64, u32)]) -> u64 {
        let mut total = 0u64;
        let mut prev_word = 0u32;
        let mut prev_inv = 0u32;
        let mut first = true;
        for &(_, w) in stream {
            if first {
                prev_word = w;
                first = false;
                continue;
            }
            let flips = (prev_word ^ w).count_ones();
            let (sent, inv) = if flips > 16 { (!w, 1) } else { (w, 0) };
            total += (prev_word ^ sent).count_ones() as u64 + (prev_inv ^ inv) as u64;
            prev_word = sent;
            prev_inv = inv;
        }
        total
    }
}

/// Per-region reprogrammable encoder: the address range of the fetch stream
/// is split into equal regions, each with its own trained [`XorTransform`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RegionEncoder {
    base: u64,
    region_bytes: u64,
    transforms: Vec<XorTransform>,
}

/// Result of evaluating a [`RegionEncoder`] on a fetch stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EncodingReport {
    /// Transitions of the unencoded stream.
    pub raw_transitions: u64,
    /// Transitions of the encoded stream.
    pub encoded_transitions: u64,
    /// Number of regions (trained transforms).
    pub regions: usize,
    /// Total XOR gates across all regional transforms.
    pub gates: usize,
}

impl EncodingReport {
    /// Fractional reduction in transitions, `0.0..=1.0` (negative if the
    /// encoding hurt).
    pub fn reduction(&self) -> f64 {
        if self.raw_transitions == 0 {
            0.0
        } else {
            1.0 - self.encoded_transitions as f64 / self.raw_transitions as f64
        }
    }
}

impl RegionEncoder {
    /// Trains one transform per region on a fetch stream of
    /// `(address, instruction word)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `num_regions` is zero or the stream is empty.
    pub fn train(stream: &[(u64, u32)], num_regions: usize) -> Self {
        assert!(num_regions > 0, "need at least one region");
        assert!(!stream.is_empty(), "cannot train on an empty stream");
        let lo = stream.iter().map(|&(a, _)| a).min().expect("non-empty");
        let hi = stream.iter().map(|&(a, _)| a).max().expect("non-empty");
        let span = (hi - lo + 4).max(4);
        let region_bytes = span.div_ceil(num_regions as u64).max(4);
        // Per-region delta sets: consecutive fetches that stay in a region.
        let mut deltas: Vec<Vec<u32>> = vec![Vec::new(); num_regions];
        for pair in stream.windows(2) {
            let (a0, w0) = pair[0];
            let (a1, w1) = pair[1];
            let r0 = ((a0 - lo) / region_bytes) as usize;
            let r1 = ((a1 - lo) / region_bytes) as usize;
            if r0 == r1 {
                deltas[r0.min(num_regions - 1)].push(w0 ^ w1);
            }
        }
        let transforms = deltas
            .iter()
            .map(|d| XorTransform::train_on_deltas(d))
            .collect();
        RegionEncoder {
            base: lo,
            region_bytes,
            transforms,
        }
    }

    /// The trained transform for an address.
    pub fn transform_for(&self, addr: u64) -> &XorTransform {
        let idx = if addr < self.base {
            0
        } else {
            (((addr - self.base) / self.region_bytes) as usize).min(self.transforms.len() - 1)
        };
        &self.transforms[idx]
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.transforms.len()
    }

    /// Encodes a fetch stream word-by-word (region chosen by address).
    pub fn encode_stream(&self, stream: &[(u64, u32)]) -> Vec<u32> {
        stream
            .iter()
            .map(|&(a, w)| self.transform_for(a).encode(w))
            .collect()
    }

    /// Evaluates raw vs. encoded transitions on a stream.
    pub fn evaluate(&self, stream: &[(u64, u32)]) -> EncodingReport {
        let raw = transitions(stream.iter().map(|&(_, w)| w));
        let encoded = transitions(self.encode_stream(stream));
        EncodingReport {
            raw_transitions: raw,
            encoded_transitions: encoded,
            regions: self.num_regions(),
            gates: self.transforms.iter().map(XorTransform::gate_count).sum(),
        }
    }

    /// Decodes an encoded stream given the fetch addresses (used by tests
    /// to prove the fetch path is lossless).
    pub fn decode_stream(&self, addrs: &[u64], encoded: &[u32]) -> Vec<u32> {
        addrs
            .iter()
            .zip(encoded)
            .map(|(&a, &w)| self.transform_for(a).decode(w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_util::Props;

    #[test]
    fn identity_is_identity() {
        let t = XorTransform::identity();
        assert!(t.is_identity());
        assert_eq!(t.encode(0xDEAD_BEEF), 0xDEAD_BEEF);
        assert_eq!(t.gate_count(), 0);
    }

    #[test]
    fn encode_decode_roundtrip_manual_transform() {
        let mut pair = [None; 32];
        pair[1] = Some(0);
        pair[5] = Some(3);
        pair[31] = Some(30);
        let t = XorTransform::new(pair, 0xF0F0_F0F0);
        for w in [0u32, 1, 0xFFFF_FFFF, 0x1234_5678, 0xDEAD_BEEF] {
            assert_eq!(t.decode(t.encode(w)), w);
        }
    }

    #[test]
    #[should_panic(expected = "lower-triangularity")]
    fn upper_triangular_pair_panics() {
        let mut pair = [None; 32];
        pair[3] = Some(7);
        XorTransform::new(pair, 0);
    }

    #[test]
    fn train_finds_correlated_bits() {
        // Bits 4 and 7 always toggle together.
        let words: Vec<u32> = (0..200)
            .map(|i| if i % 2 == 0 { 0 } else { (1 << 4) | (1 << 7) })
            .collect();
        let t = XorTransform::train(&words);
        let raw = transitions(words.iter().copied());
        let enc = transitions(words.iter().map(|&w| t.encode(w)));
        assert_eq!(raw, 199 * 2);
        assert_eq!(enc, 199); // bit 7 folded onto bit 4
    }

    #[test]
    fn train_never_hurts() {
        // Any stream: trained transform's transitions <= raw (identity is in
        // the family).
        let streams: Vec<Vec<u32>> = vec![
            (0..64).map(|i| i * 0x0101).collect(),
            (0..64)
                .map(|i| (i as u32).wrapping_mul(0x9E37_79B9))
                .collect(),
            vec![7; 32],
        ];
        for words in streams {
            let t = XorTransform::train(&words);
            let raw = transitions(words.iter().copied());
            let enc = transitions(words.iter().map(|&w| t.encode(w)));
            assert!(enc <= raw, "enc {enc} > raw {raw}");
        }
    }

    #[test]
    fn train_on_empty_is_identity() {
        assert!(XorTransform::train(&[]).is_identity());
        assert!(XorTransform::train(&[42]).is_identity());
    }

    #[test]
    fn transitions_counts_hamming() {
        assert_eq!(transitions([]), 0);
        assert_eq!(transitions([5]), 0);
        assert_eq!(transitions([0, 0xF, 0xF0]), 4 + 8);
    }

    #[test]
    fn bus_invert_caps_worst_case() {
        // Alternating all-zeros / all-ones: raw 32 transitions per step;
        // bus-invert sends the complement, paying only the invert line.
        let stream: Vec<(u64, u32)> = (0..10)
            .map(|i| (4 * i, if i % 2 == 0 { 0 } else { u32::MAX }))
            .collect();
        let raw = transitions(stream.iter().map(|&(_, w)| w));
        let bi = BusInvert::transitions(&stream);
        assert_eq!(raw, 9 * 32);
        assert!(bi <= 9 * 17, "bus-invert should cap at ~half: {bi}");
    }

    #[test]
    fn multi_region_adapts_to_phases() {
        // Two code regions with different bit correlations.
        let mut stream = Vec::new();
        for i in 0..300u32 {
            // Region A at 0x0000: bits 0,1 correlate.
            stream.push((4 * i as u64, if i % 2 == 0 { 0b11 } else { 0 }));
        }
        for i in 0..300u32 {
            // Region B at 0x8000: bits 8,9 correlate.
            stream.push((
                0x8000 + 4 * i as u64,
                if i % 2 == 0 { 0b11 << 8 } else { 0 },
            ));
        }
        let one = RegionEncoder::train(&stream, 1).evaluate(&stream);
        let two = RegionEncoder::train(&stream, 2).evaluate(&stream);
        // Both halve the transitions here (a single transform can fold both
        // correlated pairs), but two regions must never be worse.
        assert!(two.encoded_transitions <= one.encoded_transitions);
        assert!(two.reduction() >= 0.45, "reduction = {}", two.reduction());
    }

    #[test]
    fn decode_stream_recovers_instructions() {
        let stream: Vec<(u64, u32)> = (0..100u32)
            .map(|i| (4 * i as u64, i.wrapping_mul(0x0101_0101) ^ 0xA5))
            .collect();
        let enc = RegionEncoder::train(&stream, 4);
        let encoded = enc.encode_stream(&stream);
        let addrs: Vec<u64> = stream.iter().map(|&(a, _)| a).collect();
        let decoded = enc.decode_stream(&addrs, &encoded);
        let original: Vec<u32> = stream.iter().map(|&(_, w)| w).collect();
        assert_eq!(decoded, original);
    }

    #[test]
    fn report_reduction_math() {
        let r = EncodingReport {
            raw_transitions: 100,
            encoded_transitions: 60,
            regions: 1,
            gates: 3,
        };
        assert!((r.reduction() - 0.4).abs() < 1e-12);
        let idle = EncodingReport {
            raw_transitions: 0,
            encoded_transitions: 0,
            regions: 1,
            gates: 0,
        };
        assert_eq!(idle.reduction(), 0.0);
    }

    fn arb_words(rng: &mut lpmem_util::Rng) -> Vec<u32> {
        let len = rng.gen_range(2..128usize);
        (0..len).map(|_| rng.next_u32()).collect()
    }

    #[test]
    fn trained_transform_roundtrips() {
        Props::new("trained transform roundtrips its training stream").run(|rng| {
            let words = arb_words(rng);
            let t = XorTransform::train(&words);
            for &w in &words {
                assert_eq!(t.decode(t.encode(w)), w);
            }
        });
    }

    #[test]
    fn trained_transform_never_increases_transitions() {
        Props::new("trained transform never increases transitions").run(|rng| {
            let words = arb_words(rng);
            let t = XorTransform::train(&words);
            let raw = transitions(words.iter().copied());
            let enc = transitions(words.iter().map(|&w| t.encode(w)));
            assert!(enc <= raw, "enc {enc} > raw {raw}");
        });
    }
}
