//! Address-bus encodings: Gray and T0.
//!
//! The instruction *address* bus is even more regular than the data bus —
//! fetch addresses are mostly sequential — and the classic low-power
//! encodings exploit exactly that:
//!
//! * [`gray_encode`] — consecutive binary numbers differ in one bit after
//!   Gray coding, so sequential fetch runs toggle a single line. Gray
//!   coding only pays on **unit-stride** streams, so an instruction fetch
//!   bus drives the *word* address (`addr >> 2`);
//! * [`T0Encoder`] — adds one *increment* line: when the new address equals
//!   the previous plus the stride, the address lines freeze entirely and
//!   only the INC line is asserted (Benini et al.'s T0 code).
//!
//! These serve as the address-side baselines of the 1B.3 study (experiment
//! **F3b**).

/// Converts a word to its reflected binary Gray code.
pub fn gray_encode(value: u32) -> u32 {
    value ^ (value >> 1)
}

/// Inverts [`gray_encode`].
pub fn gray_decode(gray: u32) -> u32 {
    let mut value = gray;
    let mut shift = 1;
    while shift < 32 {
        value ^= value >> shift;
        shift <<= 1;
    }
    value
}

/// Transitions of an address stream when driven in plain binary.
pub fn binary_transitions(addrs: &[u32]) -> u64 {
    addrs
        .windows(2)
        .map(|w| (w[0] ^ w[1]).count_ones() as u64)
        .sum()
}

/// Transitions of an address stream when driven Gray-coded.
pub fn gray_transitions(addrs: &[u32]) -> u64 {
    addrs
        .windows(2)
        .map(|w| (gray_encode(w[0]) ^ gray_encode(w[1])).count_ones() as u64)
        .sum()
}

/// The T0 address encoder: a stateful line-freeze code.
///
/// When `addr == prev + stride`, the encoder keeps the address lines at
/// their previous value and toggles nothing except (possibly) the INC
/// line; otherwise it drives the new address and deasserts INC. The
/// decoder reconstructs addresses from `(lines, inc)` exactly.
#[derive(Debug, Clone)]
pub struct T0Encoder {
    stride: u32,
    lines: u32,
    inc: bool,
    expected: Option<u32>,
}

impl T0Encoder {
    /// Creates an encoder for the given stride (4 for word-fetch buses).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(stride: u32) -> Self {
        assert!(stride > 0, "stride must be positive");
        T0Encoder {
            stride,
            lines: 0,
            inc: false,
            expected: None,
        }
    }

    /// Encodes the next address, returning the `(address lines, inc line)`
    /// the bus drives.
    pub fn push(&mut self, addr: u32) -> (u32, bool) {
        match self.expected {
            Some(exp) if exp == addr => {
                self.inc = true;
                // lines freeze
            }
            _ => {
                self.lines = addr;
                self.inc = false;
            }
        }
        self.expected = Some(addr.wrapping_add(self.stride));
        (self.lines, self.inc)
    }

    /// Transitions of an address stream under T0, counting the INC line.
    pub fn transitions(stride: u32, addrs: &[u32]) -> u64 {
        let mut enc = T0Encoder::new(stride);
        let mut total = 0u64;
        let mut prev: Option<(u32, bool)> = None;
        for &a in addrs {
            let now = enc.push(a);
            if let Some((pl, pi)) = prev {
                total += (pl ^ now.0).count_ones() as u64 + (pi != now.1) as u64;
            }
            prev = Some(now);
        }
        total
    }
}

/// The T0 decoder, reconstructing the address stream from bus states.
#[derive(Debug, Clone)]
pub struct T0Decoder {
    stride: u32,
    last_addr: Option<u32>,
}

impl T0Decoder {
    /// Creates a decoder for the given stride.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(stride: u32) -> Self {
        assert!(stride > 0, "stride must be positive");
        T0Decoder {
            stride,
            last_addr: None,
        }
    }

    /// Decodes one bus state back to the address.
    pub fn pull(&mut self, lines: u32, inc: bool) -> u32 {
        let addr = if inc {
            self.last_addr
                .map(|a| a.wrapping_add(self.stride))
                .unwrap_or(lines)
        } else {
            lines
        };
        self.last_addr = Some(addr);
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_util::Props;

    #[test]
    fn gray_roundtrip_small() {
        for v in 0..1024u32 {
            assert_eq!(gray_decode(gray_encode(v)), v);
        }
    }

    #[test]
    fn gray_neighbours_differ_in_one_bit() {
        for v in 0..4096u32 {
            let d = gray_encode(v) ^ gray_encode(v + 1);
            assert_eq!(d.count_ones(), 1, "v = {v}");
        }
    }

    #[test]
    fn sequential_run_gray_beats_binary() {
        // The fetch bus carries word addresses (unit stride).
        let addrs: Vec<u32> = (0..256).map(|i| 0x400 + i).collect();
        let bin = binary_transitions(&addrs);
        let gray = gray_transitions(&addrs);
        assert_eq!(gray, 255, "one toggle per sequential step");
        assert!(bin > gray, "binary {bin} vs gray {gray}");
    }

    #[test]
    fn t0_freezes_lines_on_sequential_runs() {
        let addrs: Vec<u32> = (0..256).map(|i| 0x400 + i).collect();
        // First step drives the base, INC then stays asserted: 1 toggle.
        assert_eq!(T0Encoder::transitions(1, &addrs), 1);
    }

    #[test]
    fn t0_pays_on_jumps() {
        let addrs = [0x400u32, 0x401, 0x2000, 0x2001];
        let t = T0Encoder::transitions(1, &addrs);
        assert!(t > 0);
        // Still no worse than binary + the INC line toggles.
        assert!(t <= binary_transitions(&addrs) + addrs.len() as u64);
    }

    #[test]
    fn t0_decoder_recovers_stream() {
        let addrs = [0u32, 4, 8, 100, 104, 108, 8, 12, 16];
        let mut enc = T0Encoder::new(4);
        let mut dec = T0Decoder::new(4);
        for &a in &addrs {
            let (lines, inc) = enc.push(a);
            assert_eq!(dec.pull(lines, inc), a);
        }
    }

    #[test]
    fn gray_roundtrips() {
        Props::new("gray code roundtrips on arbitrary words").run(|rng| {
            let v = rng.next_u32();
            assert_eq!(gray_decode(gray_encode(v)), v);
        });
    }

    #[test]
    fn t0_roundtrips_arbitrary_streams() {
        Props::new("T0 codec roundtrips arbitrary address streams").run(|rng| {
            let len = rng.gen_range(1..128usize);
            let addrs: Vec<u32> = (0..len).map(|_| rng.next_u32()).collect();
            let mut enc = T0Encoder::new(4);
            let mut dec = T0Decoder::new(4);
            for &a in &addrs {
                let (lines, inc) = enc.push(a);
                assert_eq!(dec.pull(lines, inc), a);
            }
        });
    }
}
