//! Energy-driven memory partitioning.
//!
//! Given a [`BlockProfile`] (per-block access counts over a contiguous
//! address range), this crate synthesizes a **multi-bank memory
//! architecture**: a division of the block sequence into up to `K`
//! contiguous banks. Each access activates only its bank, and smaller banks
//! cost less energy per access (see `lpmem_energy::SramModel`), so a good
//! partition isolates hot regions in small banks. This is the substrate the
//! DATE 2003 1B.1 paper builds on; its contribution — address clustering —
//! lives in `lpmem-cluster` and *feeds* this partitioner.
//!
//! Three synthesis algorithms are provided:
//!
//! * [`optimal_partition`] — exact dynamic programming, `O(n²·K)`;
//! * [`greedy_partition`] — iterative best-split baseline;
//! * [`Partition::monolithic`] — the single-bank reference design.
//!
//! The profile-based [`PartitionCost`] scores dynamic energy; the
//! trace-driven, power-gating-aware evaluator lives in [`sleep`].
//!
//! # Example
//!
//! ```
//! use lpmem_energy::Technology;
//! use lpmem_partition::{optimal_partition, PartitionCost};
//! use lpmem_trace::BlockProfile;
//!
//! // A hot region (blocks 0-1) next to cold storage.
//! let profile = BlockProfile::from_counts(0, 4096, vec![9000, 8000, 10, 10, 10, 10])?;
//! let cost = PartitionCost::new(&Technology::tech180());
//! let (partition, eval) = optimal_partition(&profile, 4, &cost);
//! assert!(partition.num_banks() > 1);
//! let mono_eval = cost.evaluate(&profile, &lpmem_partition::Partition::monolithic(profile.num_blocks()));
//! assert!(eval.total() < mono_eval.total());
//! # Ok::<(), lpmem_trace::TraceError>(())
//! ```

#![warn(missing_docs)]

pub mod sleep;

use lpmem_energy::{AreaReport, Energy, EnergyReport, SramModel, Technology};
use lpmem_trace::BlockProfile;

/// A division of `n` profile blocks into contiguous banks.
///
/// Stored as ascending cut points `0 = c₀ < c₁ < … < c_k = n`; bank `i`
/// covers blocks `c_i..c_{i+1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Partition {
    cuts: Vec<usize>,
}

impl Partition {
    /// Builds a partition from ascending cut points. The first cut must be
    /// `0` and the last `n` (the number of blocks).
    ///
    /// # Panics
    ///
    /// Panics if `cuts` has fewer than two points or is not strictly
    /// ascending from zero.
    pub fn from_cuts(cuts: Vec<usize>) -> Self {
        assert!(cuts.len() >= 2, "a partition needs at least one bank");
        assert_eq!(cuts[0], 0, "first cut must be 0");
        assert!(
            cuts.windows(2).all(|w| w[0] < w[1]),
            "cuts must be strictly ascending"
        );
        Partition { cuts }
    }

    /// The single-bank partition of `n` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn monolithic(n: usize) -> Self {
        Partition::from_cuts(vec![0, n])
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.cuts.len() - 1
    }

    /// Iterates over bank block ranges.
    pub fn banks(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        self.cuts.windows(2).map(|w| w[0]..w[1])
    }

    /// The cut points.
    pub fn cuts(&self) -> &[usize] {
        &self.cuts
    }

    /// Total blocks covered.
    pub fn num_blocks(&self) -> usize {
        *self.cuts.last().expect("partition always has cuts")
    }
}

/// Per-bank energy summary within a [`PartitionEvaluation`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BankInfo {
    /// Block range of the bank.
    pub blocks: std::ops::Range<usize>,
    /// Bank capacity in bytes.
    pub bytes: u64,
    /// Accesses that hit this bank.
    pub accesses: u64,
    /// Dynamic access energy of this bank.
    pub energy: Energy,
}

/// Result of evaluating a partition: total energy breakdown plus per-bank
/// detail.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PartitionEvaluation {
    /// Energy breakdown (`bank.read`, `bank.write`, `bank.select`,
    /// `sram.idle`).
    pub report: EnergyReport,
    /// Per-bank summaries in address order.
    pub banks: Vec<BankInfo>,
}

impl PartitionEvaluation {
    /// Total energy.
    pub fn total(&self) -> Energy {
        self.report.total()
    }
}

/// The cost model shared by all partitioning algorithms.
///
/// Energy of a partition with banks `b` and total bank count `k`:
///
/// ```text
/// Σ_b  reads_b·E_read(S_b) + writes_b·E_write(S_b)      (bank access)
/// + accesses_total · select_pj · k                      (decoder/select)
/// + Σ_b idle(S_b, cycles)                               (leakage, cycles = accesses)
/// ```
#[derive(Debug, Clone)]
pub struct PartitionCost {
    sram: SramModel,
    select_pj: f64,
    idle_per_kib_pj: f64,
}

impl PartitionCost {
    /// Builds the cost model for a technology node.
    pub fn new(tech: &Technology) -> Self {
        PartitionCost {
            sram: SramModel::new(tech),
            select_pj: tech.bank_select_pj,
            idle_per_kib_pj: tech.sram_idle_pj_per_kib,
        }
    }

    /// Full evaluation of a partition.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover exactly
    /// `profile.num_blocks()` blocks.
    pub fn evaluate(&self, profile: &BlockProfile, partition: &Partition) -> PartitionEvaluation {
        assert_eq!(
            partition.num_blocks(),
            profile.num_blocks(),
            "partition must cover the whole profile"
        );
        let mut report = EnergyReport::new();
        let mut banks = Vec::with_capacity(partition.num_banks());
        let total_accesses = profile.total_accesses();
        let mut read_e = Energy::ZERO;
        let mut write_e = Energy::ZERO;
        for range in partition.banks() {
            let bytes = (range.len() as u64) * profile.block_size();
            let counts = &profile.counts()[range.clone()];
            let wr: u64 = profile.write_counts()[range.clone()].iter().sum();
            let accesses: u64 = counts.iter().sum();
            let rd = accesses - wr;
            let e_r = self.sram.read_energy(bytes) * rd as f64;
            let e_w = self.sram.write_energy(bytes) * wr as f64;
            read_e += e_r;
            write_e += e_w;
            banks.push(BankInfo {
                blocks: range,
                bytes,
                accesses,
                energy: e_r + e_w,
            });
        }
        report.add("bank.read", read_e);
        report.add("bank.write", write_e);
        report.add(
            "bank.select",
            Energy::from_pj(self.select_pj * partition.num_banks() as f64 * total_accesses as f64),
        );
        let total_kib = (profile.num_blocks() as u64 * profile.block_size()) as f64 / 1024.0;
        report.add(
            "sram.idle",
            Energy::from_pj(self.idle_per_kib_pj * total_kib * total_accesses as f64),
        );
        PartitionEvaluation { report, banks }
    }

    /// Select-overhead energy for `k` banks over `accesses` accesses.
    fn select_energy(&self, k: usize, accesses: u64) -> Energy {
        Energy::from_pj(self.select_pj * k as f64 * accesses as f64)
    }

    /// Total silicon area of the banked memory in mm²: the sum of the
    /// per-bank macro areas (each bank pays its own periphery — the area
    /// price of partitioning).
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover exactly
    /// `profile.num_blocks()` blocks.
    pub fn area_mm2(&self, profile: &BlockProfile, partition: &Partition) -> f64 {
        self.area_report(profile, partition).total_mm2()
    }

    /// The named area breakdown of the banked memory — the A5 accounting
    /// promoted to a first-class [`AreaReport`]: `bank.cells` (invariant
    /// under banking) and `bank.periphery` (paid once per bank, the area
    /// price of partitioning).
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover exactly
    /// `profile.num_blocks()` blocks.
    pub fn area_report(&self, profile: &BlockProfile, partition: &Partition) -> AreaReport {
        assert_eq!(
            partition.num_blocks(),
            profile.num_blocks(),
            "partition must cover the whole profile"
        );
        let mut report = AreaReport::new();
        for range in partition.banks() {
            let bytes = range.len() as u64 * profile.block_size();
            report.add("bank.cells", self.sram.cell_area_mm2(bytes));
            report.add("bank.periphery", self.sram.periphery_area_mm2(bytes));
        }
        report
    }
}

/// Exact energy-optimal partitioning into at most `max_banks` contiguous
/// banks, via dynamic programming over (prefix length, bank count).
///
/// Returns the partition together with its evaluation.
///
/// # Panics
///
/// Panics if `max_banks` is zero.
pub fn optimal_partition(
    profile: &BlockProfile,
    max_banks: usize,
    cost: &PartitionCost,
) -> (Partition, PartitionEvaluation) {
    assert!(max_banks > 0, "need at least one bank");
    let n = profile.num_blocks();
    let k_max = max_banks.min(n);

    // bank_cost[i][j] for i < j: energy of a bank covering blocks i..j.
    // Computed lazily below via closure over prefix sums.
    let block_size = profile.block_size();
    let mut pref_r = vec![0u64; n + 1];
    let mut pref_w = vec![0u64; n + 1];
    for i in 0..n {
        let w = profile.write_counts()[i];
        let c = profile.counts()[i];
        pref_r[i + 1] = pref_r[i] + (c - w);
        pref_w[i + 1] = pref_w[i] + w;
    }
    let bank_cost = |i: usize, j: usize| -> f64 {
        let bytes = (j - i) as u64 * block_size;
        let r = (pref_r[j] - pref_r[i]) as f64;
        let w = (pref_w[j] - pref_w[i]) as f64;
        cost.sram.read_energy(bytes).as_pj() * r + cost.sram.write_energy(bytes).as_pj() * w
    };

    // dp[k][j]: min energy of splitting blocks 0..j into exactly k banks.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; n + 1]; k_max + 1];
    let mut prev = vec![vec![0usize; n + 1]; k_max + 1];
    dp[0][0] = 0.0;
    for k in 1..=k_max {
        for j in k..=n {
            for i in (k - 1)..j {
                if dp[k - 1][i] == inf {
                    continue;
                }
                let c = dp[k - 1][i] + bank_cost(i, j);
                if c < dp[k][j] {
                    dp[k][j] = c;
                    prev[k][j] = i;
                }
            }
        }
    }

    // Choose the bank count including the per-access select overhead.
    let accesses = profile.total_accesses();
    let mut best_k = 1;
    let mut best = f64::INFINITY;
    for (k, row) in dp.iter().enumerate().skip(1) {
        if row[n] == inf {
            continue;
        }
        let total = row[n] + cost.select_energy(k, accesses).as_pj();
        if total < best {
            best = total;
            best_k = k;
        }
    }

    // Reconstruct cuts.
    let mut cuts = vec![n];
    let mut j = n;
    for k in (1..=best_k).rev() {
        j = prev[k][j];
        cuts.push(j);
    }
    cuts.reverse();
    debug_assert_eq!(cuts[0], 0);
    let partition = Partition::from_cuts(cuts);
    let eval = cost.evaluate(profile, &partition);
    (partition, eval)
}

/// Greedy baseline: starting from the monolith, repeatedly apply the single
/// best bank split until `max_banks` is reached or no split lowers total
/// energy.
///
/// # Panics
///
/// Panics if `max_banks` is zero.
pub fn greedy_partition(
    profile: &BlockProfile,
    max_banks: usize,
    cost: &PartitionCost,
) -> (Partition, PartitionEvaluation) {
    assert!(max_banks > 0, "need at least one bank");
    let n = profile.num_blocks();
    let mut partition = Partition::monolithic(n);
    let mut best_eval = cost.evaluate(profile, &partition);
    loop {
        if partition.num_banks() >= max_banks {
            break;
        }
        let mut improved: Option<(Partition, PartitionEvaluation)> = None;
        for (bi, range) in partition.banks().enumerate() {
            for cut in range.start + 1..range.end {
                let mut cuts = partition.cuts().to_vec();
                cuts.insert(bi + 1, cut);
                let cand = Partition::from_cuts(cuts);
                let eval = cost.evaluate(profile, &cand);
                let current_best = improved
                    .as_ref()
                    .map(|(_, e)| e.total())
                    .unwrap_or(best_eval.total());
                if eval.total() < current_best {
                    improved = Some((cand, eval));
                }
            }
        }
        match improved {
            Some((p, e)) => {
                partition = p;
                best_eval = e;
            }
            None => break,
        }
    }
    (partition, best_eval)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(counts: Vec<u64>) -> BlockProfile {
        BlockProfile::from_counts(0, 4096, counts).unwrap()
    }

    fn cost() -> PartitionCost {
        PartitionCost::new(&Technology::tech180())
    }

    #[test]
    fn partition_accessors() {
        let p = Partition::from_cuts(vec![0, 2, 5]);
        assert_eq!(p.num_banks(), 2);
        assert_eq!(p.num_blocks(), 5);
        let banks: Vec<_> = p.banks().collect();
        assert_eq!(banks, vec![0..2, 2..5]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bad_cuts_panic() {
        Partition::from_cuts(vec![0, 3, 3]);
    }

    #[test]
    fn hot_region_gets_its_own_bank() {
        let p = profile(vec![10_000, 9_000, 5, 5, 5, 5, 5, 5]);
        let (part, _) = optimal_partition(&p, 4, &cost());
        // The hot prefix must be separated from the cold tail.
        assert!(part.cuts().contains(&2), "cuts: {:?}", part.cuts());
    }

    #[test]
    fn optimal_beats_monolith_on_peaky_profile() {
        let p = profile(vec![10_000, 9_000, 5, 5, 5, 5, 5, 5]);
        let c = cost();
        let (_, opt) = optimal_partition(&p, 8, &c);
        let mono = c.evaluate(&p, &Partition::monolithic(8));
        assert!(opt.total() < mono.total());
    }

    #[test]
    fn uniform_profile_prefers_few_banks() {
        // With uniform traffic, select overhead dominates: expect few banks.
        let p = profile(vec![100; 16]);
        let (part_many, eval) = optimal_partition(&p, 16, &cost());
        // Whatever k is chosen must be no worse than forcing 16 banks.
        let forced = Partition::from_cuts((0..=16).collect());
        let forced_eval = cost().evaluate(&p, &forced);
        assert!(eval.total() <= forced_eval.total());
        assert!(part_many.num_banks() <= 16);
    }

    #[test]
    fn k1_equals_monolith() {
        let p = profile(vec![5, 100, 3, 80]);
        let c = cost();
        let (part, eval) = optimal_partition(&p, 1, &c);
        assert_eq!(part, Partition::monolithic(4));
        assert_eq!(
            eval.total(),
            c.evaluate(&p, &Partition::monolithic(4)).total()
        );
    }

    #[test]
    fn optimal_never_worse_than_greedy() {
        let profiles = vec![
            vec![1000, 2, 3, 999, 1, 2, 1000, 4],
            vec![10, 10, 10, 10],
            vec![5000, 1, 1, 1, 1, 1, 1, 4000, 1, 1, 1, 1],
        ];
        let c = cost();
        for counts in profiles {
            let p = profile(counts);
            let (_, opt) = optimal_partition(&p, 6, &c);
            let (_, greedy) = greedy_partition(&p, 6, &c);
            assert!(opt.total().as_pj() <= greedy.total().as_pj() + 1e-6);
        }
    }

    #[test]
    fn optimal_matches_exhaustive_on_small_input() {
        // Enumerate all partitions of 6 blocks into <= 3 banks.
        let p = profile(vec![500, 20, 700, 3, 3, 900]);
        let c = cost();
        let (_, opt) = optimal_partition(&p, 3, &c);
        let n = 6;
        let mut best = f64::INFINITY;
        // All cut subsets of {1..5} of size <= 2.
        for mask in 0u32..(1 << (n - 1)) {
            if mask.count_ones() > 2 {
                continue;
            }
            let mut cuts = vec![0];
            for b in 0..n - 1 {
                if mask & (1 << b) != 0 {
                    cuts.push(b + 1);
                }
            }
            cuts.push(n);
            let eval = c.evaluate(&p, &Partition::from_cuts(cuts));
            best = best.min(eval.total().as_pj());
        }
        assert!((opt.total().as_pj() - best).abs() < 1e-6);
    }

    #[test]
    fn evaluation_reports_per_bank_detail() {
        let p = profile(vec![100, 0, 50]);
        let c = cost();
        let eval = c.evaluate(&p, &Partition::from_cuts(vec![0, 1, 3]));
        assert_eq!(eval.banks.len(), 2);
        assert_eq!(eval.banks[0].accesses, 100);
        assert_eq!(eval.banks[1].accesses, 50);
        assert_eq!(eval.banks[0].bytes, 4096);
        assert_eq!(eval.banks[1].bytes, 8192);
        assert!(eval.report.component("bank.select") > Energy::ZERO);
    }

    #[test]
    fn area_grows_with_bank_count() {
        let p = profile(vec![100; 16]);
        let c = cost();
        let mono = c.area_mm2(&p, &Partition::monolithic(16));
        let eight = c.area_mm2(&p, &Partition::from_cuts((0..=16).step_by(2).collect()));
        assert!(eight > mono);
    }

    #[test]
    fn area_report_breaks_down_the_total() {
        let p = profile(vec![100; 16]);
        let c = cost();
        let mono = Partition::monolithic(16);
        let eight = Partition::from_cuts((0..=16).step_by(2).collect());
        for part in [&mono, &eight] {
            let report = c.area_report(&p, part);
            assert!((report.total_mm2() - c.area_mm2(&p, part)).abs() < 1e-12);
        }
        // Cells are conserved across bankings; periphery is what grows.
        let rm = c.area_report(&p, &mono);
        let r8 = c.area_report(&p, &eight);
        assert!((rm.component("bank.cells") - r8.component("bank.cells")).abs() < 1e-12);
        assert!(r8.component("bank.periphery") > rm.component("bank.periphery"));
    }

    #[test]
    #[should_panic(expected = "cover the whole profile")]
    fn mismatched_partition_panics() {
        let p = profile(vec![1, 2, 3]);
        cost().evaluate(&p, &Partition::monolithic(2));
    }
}
