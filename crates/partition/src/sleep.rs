//! Trace-driven, sleep-aware evaluation of a partitioned memory.
//!
//! The profile-based cost model in the crate root scores only *dynamic*
//! access energy, for which per-block access counts are a sufficient
//! statistic. Real multi-bank memories also gate idle banks into a
//! state-retentive **sleep** mode, and how much sleep a bank gets depends
//! on the *temporal* structure of the trace: a bank whose accesses are
//! clumped in time sleeps in long stretches, while a bank poked every few
//! cycles never sleeps at all. This is the mechanism that makes
//! affinity-aware address clustering (grouping *co-accessed* blocks into
//! the same bank) worth more than frequency sorting alone.
//!
//! The model: logical time advances one tick per trace event. A bank is
//! *active* on the tick it is accessed; after [`SleepPolicy::timeout`]
//! consecutive idle ticks it enters sleep, where it leaks only
//! `sleep_frac` of its idle power; the next access pays a wake penalty
//! proportional to the bank size.

use lpmem_energy::{Energy, EnergyReport, SramModel, Technology};
use lpmem_trace::{BlockProfile, Trace};

use crate::Partition;

/// Bank power-gating policy.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SleepPolicy {
    /// Idle ticks (trace events) before a bank is put to sleep.
    pub timeout: u64,
    /// Sleep leakage as a fraction of idle leakage.
    pub sleep_frac: f64,
    /// Wake penalty in pJ per KiB of bank.
    pub wake_pj_per_kib: f64,
}

impl SleepPolicy {
    /// The policy implied by a technology's parameters with the given
    /// timeout.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    pub fn from_tech(tech: &Technology, timeout: u64) -> Self {
        assert!(timeout > 0, "timeout must be at least one tick");
        SleepPolicy {
            timeout,
            sleep_frac: tech.sram_sleep_frac,
            wake_pj_per_kib: tech.sram_wake_pj_per_kib,
        }
    }
}

/// Result of a sleep-aware evaluation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SleepEvaluation {
    /// Energy breakdown: `bank.read`, `bank.write`, `bank.select`,
    /// `leak.idle`, `leak.sleep`, `wakeups`.
    pub report: EnergyReport,
    /// Wake-up count per bank.
    pub wakeups: Vec<u64>,
    /// Fraction of bank-ticks spent asleep, in `0.0..=1.0`.
    pub sleep_fraction: f64,
    /// Ticks each bank spent in drowsy sleep (exact integer counts; the
    /// retention-failure model in `lpmem-fault` scales on these).
    pub bank_sleep_ticks: Vec<u64>,
    /// Logical trace ticks the evaluation covered (data events replayed).
    pub total_ticks: u64,
}

impl SleepEvaluation {
    /// Total energy.
    pub fn total(&self) -> Energy {
        self.report.total()
    }
}

/// Replays `trace` against `partition` (whose banks cover the blocks of
/// `profile`) under a sleep policy.
///
/// Accesses outside the profile's range are ignored (they belong to other
/// memories). Instruction fetches are ignored; this models the data-memory
/// system, like the profile-based evaluator.
///
/// # Panics
///
/// Panics if the partition does not cover exactly `profile.num_blocks()`
/// blocks.
pub fn evaluate_with_sleep(
    trace: &Trace,
    profile: &BlockProfile,
    partition: &Partition,
    tech: &Technology,
    policy: &SleepPolicy,
) -> SleepEvaluation {
    assert_eq!(
        partition.num_blocks(),
        profile.num_blocks(),
        "partition must cover the whole profile"
    );
    let sram = SramModel::new(tech);
    let num_banks = partition.num_banks();
    let block_size = profile.block_size();
    let base = profile.base();
    let shift = block_size.trailing_zeros();

    // block -> bank lookup.
    let mut bank_of = vec![0usize; profile.num_blocks()];
    let mut bank_bytes = Vec::with_capacity(num_banks);
    for (bi, range) in partition.banks().enumerate() {
        for b in range.clone() {
            bank_of[b] = bi;
        }
        bank_bytes.push(range.len() as u64 * block_size);
    }
    let bank_kib: Vec<f64> = bank_bytes.iter().map(|&b| b as f64 / 1024.0).collect();
    let read_e: Vec<Energy> = bank_bytes.iter().map(|&b| sram.read_energy(b)).collect();
    let write_e: Vec<Energy> = bank_bytes.iter().map(|&b| sram.write_energy(b)).collect();

    let mut last_access = vec![0i64; num_banks];
    let mut asleep = vec![false; num_banks];
    let mut wakeups = vec![0u64; num_banks];
    // Idle/sleep energy is integrated lazily per bank on access and at the
    // end, to keep the loop O(events) rather than O(events × banks).
    let mut leak_idle_pj = 0.0;
    let mut leak_sleep_pj = 0.0;
    let mut wake_pj = 0.0;
    let mut access_read = Energy::ZERO;
    let mut access_write = Energy::ZERO;
    let mut accesses = 0u64;
    let mut bank_sleep_ticks = vec![0u64; num_banks];

    let idle_pj_per_kib = tech.sram_idle_pj_per_kib;
    // Integrates a bank's leakage from its last access to tick `now`.
    let settle = |bank: usize,
                  now: i64,
                  last_access: &[i64],
                  asleep: &mut [bool],
                  leak_idle_pj: &mut f64,
                  leak_sleep_pj: &mut f64,
                  sleep_ticks: &mut [u64],
                  kib: &[f64]| {
        let idle_span = (now - last_access[bank]).max(0) as u64;
        let awake = idle_span.min(policy.timeout);
        let sleeping = idle_span - awake;
        *leak_idle_pj += idle_pj_per_kib * kib[bank] * awake as f64;
        *leak_sleep_pj += idle_pj_per_kib * policy.sleep_frac * kib[bank] * sleeping as f64;
        sleep_ticks[bank] += sleeping;
        if sleeping > 0 {
            asleep[bank] = true;
        }
    };

    let mut now: i64 = 0;
    for ev in trace.iter().filter(|e| e.kind.is_data()) {
        if ev.addr < base {
            now += 1;
            continue;
        }
        let block = ((ev.addr - base) >> shift) as usize;
        if block >= bank_of.len() {
            now += 1;
            continue;
        }
        let bank = bank_of[block];
        settle(
            bank,
            now,
            &last_access,
            &mut asleep,
            &mut leak_idle_pj,
            &mut leak_sleep_pj,
            &mut bank_sleep_ticks,
            &bank_kib,
        );
        if asleep[bank] {
            wakeups[bank] += 1;
            wake_pj += policy.wake_pj_per_kib * bank_kib[bank];
            asleep[bank] = false;
        }
        if ev.kind == lpmem_trace::AccessKind::Write {
            access_write += write_e[bank];
        } else {
            access_read += read_e[bank];
        }
        accesses += 1;
        last_access[bank] = now;
        now += 1;
    }
    // Settle every bank to the end of the trace.
    for bank in 0..num_banks {
        settle(
            bank,
            now,
            &last_access,
            &mut asleep,
            &mut leak_idle_pj,
            &mut leak_sleep_pj,
            &mut bank_sleep_ticks,
            &bank_kib,
        );
    }

    let mut report = EnergyReport::new();
    report.add("bank.read", access_read);
    report.add("bank.write", access_write);
    report.add(
        "bank.select",
        Energy::from_pj(tech.bank_select_pj * num_banks as f64 * accesses as f64),
    );
    report.add("leak.idle", Energy::from_pj(leak_idle_pj));
    report.add("leak.sleep", Energy::from_pj(leak_sleep_pj));
    report.add("wakeups", Energy::from_pj(wake_pj));
    let total_ticks = now.max(1) as u64;
    let total_bank_ticks = total_ticks * num_banks as u64;
    let sleep_ticks: u64 = bank_sleep_ticks.iter().sum();
    SleepEvaluation {
        report,
        wakeups,
        sleep_fraction: sleep_ticks as f64 / total_bank_ticks as f64,
        bank_sleep_ticks,
        total_ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_trace::MemEvent;

    fn tech() -> Technology {
        Technology::tech180()
    }

    /// Alternating accesses to two blocks in [0, 2) over 1 KiB blocks.
    fn ping_pong(n: usize) -> Trace {
        (0..n)
            .map(|i| MemEvent::read(if i % 2 == 0 { 0 } else { 1024 }))
            .collect()
    }

    /// Phase-structured: all accesses to block 0, then all to block 1.
    fn phased(n: usize) -> Trace {
        (0..n)
            .map(|i| MemEvent::read(if i < n / 2 { 0 } else { 1024 }))
            .collect()
    }

    fn two_bank_setup(trace: &Trace) -> (BlockProfile, Partition) {
        let profile = BlockProfile::from_trace(trace, 1024).unwrap();
        let partition = Partition::from_cuts(vec![0, 1, profile.num_blocks()]);
        (profile, partition)
    }

    #[test]
    fn phased_traffic_sleeps_ping_pong_does_not() {
        let policy = SleepPolicy::from_tech(&tech(), 16);
        let pp = ping_pong(10_000);
        let (p1, part1) = two_bank_setup(&pp);
        let ev_pp = evaluate_with_sleep(&pp, &p1, &part1, &tech(), &policy);

        let ph = phased(10_000);
        let (p2, part2) = two_bank_setup(&ph);
        let ev_ph = evaluate_with_sleep(&ph, &p2, &part2, &tech(), &policy);

        assert_eq!(
            ev_pp.sleep_fraction, 0.0,
            "ping-pong banks never idle long enough"
        );
        assert!(
            ev_ph.sleep_fraction > 0.4,
            "phased banks sleep: {}",
            ev_ph.sleep_fraction
        );
        // Same access counts, same banks: the phased trace must be cheaper.
        assert!(ev_ph.total() < ev_pp.total());
    }

    #[test]
    fn wakeups_are_counted_per_bank() {
        let policy = SleepPolicy::from_tech(&tech(), 4);
        // Bank 1 is touched once, long after bank 0 traffic put it to sleep.
        let mut evs: Vec<MemEvent> = (0..100).map(|_| MemEvent::read(0)).collect();
        evs.push(MemEvent::read(1024));
        let trace: Trace = evs.into();
        let (profile, partition) = two_bank_setup(&trace);
        let ev = evaluate_with_sleep(&trace, &profile, &partition, &tech(), &policy);
        assert_eq!(ev.wakeups[0], 0);
        assert_eq!(ev.wakeups[1], 1);
        assert!(ev.report.component("wakeups") > Energy::ZERO);
    }

    #[test]
    fn sleep_never_increases_total_leakage() {
        let trace = phased(5_000);
        let (profile, partition) = two_bank_setup(&trace);
        let lazy = SleepPolicy::from_tech(&tech(), 1_000_000); // effectively no sleep
        let eager = SleepPolicy::from_tech(&tech(), 8);
        let e_lazy = evaluate_with_sleep(&trace, &profile, &partition, &tech(), &lazy);
        let e_eager = evaluate_with_sleep(&trace, &profile, &partition, &tech(), &eager);
        let leak = |e: &SleepEvaluation| {
            e.report.component("leak.idle")
                + e.report.component("leak.sleep")
                + e.report.component("wakeups")
        };
        assert!(leak(&e_eager) < leak(&e_lazy));
    }

    #[test]
    fn access_energy_matches_profile_based_evaluator() {
        use crate::PartitionCost;
        let trace = phased(2_000);
        let (profile, partition) = two_bank_setup(&trace);
        let policy = SleepPolicy::from_tech(&tech(), 16);
        let sleep_eval = evaluate_with_sleep(&trace, &profile, &partition, &tech(), &policy);
        let flat_eval = PartitionCost::new(&tech()).evaluate(&profile, &partition);
        // The dynamic components are identical; only leakage modelling
        // differs.
        for comp in ["bank.read", "bank.write", "bank.select"] {
            let a = sleep_eval.report.component(comp).as_pj();
            let b = flat_eval.report.component(comp).as_pj();
            assert!((a - b).abs() < 1e-6, "{comp}: {a} vs {b}");
        }
    }

    #[test]
    fn bank_sleep_ticks_back_the_fraction() {
        let trace = phased(10_000);
        let (profile, partition) = two_bank_setup(&trace);
        let policy = SleepPolicy::from_tech(&tech(), 16);
        let ev = evaluate_with_sleep(&trace, &profile, &partition, &tech(), &policy);
        let total: u64 = ev.bank_sleep_ticks.iter().sum();
        assert!(total > 0, "phased trace must sleep");
        let expect = total as f64 / (ev.total_ticks * ev.bank_sleep_ticks.len() as u64) as f64;
        assert_eq!(ev.sleep_fraction, expect);
    }

    #[test]
    fn monolith_never_sleeps_under_steady_traffic() {
        let trace = phased(4_000);
        let profile = BlockProfile::from_trace(&trace, 1024).unwrap();
        let partition = Partition::monolithic(profile.num_blocks());
        let policy = SleepPolicy::from_tech(&tech(), 16);
        let ev = evaluate_with_sleep(&trace, &profile, &partition, &tech(), &policy);
        assert_eq!(ev.sleep_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "timeout")]
    fn zero_timeout_panics() {
        SleepPolicy::from_tech(&tech(), 0);
    }
}
