//! Cross-crate consistency checks: the same facts observed through
//! different subsystems must agree.

use lpmem::cluster::{cluster_blocks, ClusterConfig};
use lpmem::prelude::*;
use lpmem::trace::gen::HotColdGen;

/// Remapping a *trace* through an [`AddressMap`] and then profiling must
/// equal applying the map to the original *profile* — the two views of
/// clustering used by the flow.
#[test]
fn trace_remap_agrees_with_profile_permutation() {
    let trace: Trace = HotColdGen::new(1 << 15, 6, 0.8)
        .block_size(1024)
        .seed(5)
        .events(40_000)
        .collect();
    let profile = BlockProfile::from_trace(&trace, 1024).unwrap();
    let map = cluster_blocks(&profile, Some(&trace), &ClusterConfig::default());

    let remapped_profile = map.apply(&profile).unwrap();

    let remapped_trace: Trace = trace
        .iter()
        .map(|ev| MemEvent {
            addr: map.remap_addr(ev.addr),
            ..*ev
        })
        .collect();
    let profile_of_remapped = BlockProfile::from_trace(&remapped_trace, 1024).unwrap();

    // The trace-derived profile may omit cold leading/trailing blocks; align
    // on the overlap and compare counts block by block.
    let offset = ((profile_of_remapped.base() - remapped_profile.base()) / 1024) as usize;
    for (i, &count) in profile_of_remapped.counts().iter().enumerate() {
        assert_eq!(
            count,
            remapped_profile.counts()[offset + i],
            "block {i} disagrees"
        );
    }
    assert_eq!(
        profile_of_remapped.total_accesses(),
        remapped_profile.total_accesses()
    );
}

/// A kernel's final memory image must be identical whether accesses go
/// straight to `FlatMemory` or through a write-back cache that is flushed
/// at the end.
#[test]
fn cache_replay_preserves_kernel_memory_image() {
    let run = Kernel::BubbleSort.run(48, 9).unwrap();
    // Direct replay.
    let mut direct = FlatMemory::new();
    for ev in run.trace.data_only().iter() {
        if ev.kind == AccessKind::Write {
            let bytes = ev.value.to_le_bytes();
            for (i, b) in bytes[..ev.size as usize].iter().enumerate() {
                direct.write_u8(ev.addr + i as u64, *b);
            }
        }
    }
    // Cached replay.
    let mut cache = Cache::new(CacheConfig::new(1 << 10, 16, 2).unwrap());
    let mut cached = FlatMemory::new();
    let mut buf = [0u8; 4];
    for ev in run.trace.data_only().iter() {
        match ev.kind {
            AccessKind::Read => cache.read(ev.addr, &mut buf[..ev.size as usize], &mut cached),
            AccessKind::Write => {
                let bytes = ev.value.to_le_bytes();
                cache.write(ev.addr, &bytes[..ev.size as usize], &mut cached);
            }
            AccessKind::InstrFetch => {}
        }
    }
    cache.flush(&mut cached);
    // Compare the words the kernel wrote.
    for ev in run.trace.data_only().iter() {
        if ev.kind == AccessKind::Write {
            assert_eq!(
                cached.read_u32(ev.addr),
                direct.read_u32(ev.addr),
                "divergence at {:#x}",
                ev.addr
            );
        }
    }
}

/// Stack-distance-predicted hit ratio must match the cache simulator for a
/// fully-associative LRU cache.
#[test]
fn stack_distance_predicts_fully_associative_lru() {
    let trace: Trace = HotColdGen::new(1 << 13, 4, 0.7)
        .seed(3)
        .events(20_000)
        .collect();
    let line = 64u64;
    let capacity_lines = 16u32;

    let sdh = lpmem::trace::StackDistanceHistogram::from_trace(&trace, line).unwrap();
    let predicted = sdh.lru_hit_ratio(capacity_lines as usize);

    // Fully associative: one set, `capacity_lines` ways.
    let cfg = CacheConfig::new(
        u64::from(capacity_lines) * line,
        line as u32,
        capacity_lines,
    )
    .unwrap();
    let mut cache = Cache::new(cfg);
    let mut mem = FlatMemory::new();
    let mut buf = [0u8; 4];
    for ev in &trace {
        // Reads only: writes would also hit/miss identically, but keep the
        // comparison exact by using a uniform access kind.
        cache.read(ev.addr, &mut buf, &mut mem);
    }
    let measured = cache.stats().hit_ratio();
    assert!(
        (predicted - measured).abs() < 1e-9,
        "stack distance {predicted} vs simulator {measured}"
    );
}

/// The machine's fetch-stream values must decode to the very instructions
/// the assembler emitted.
#[test]
fn fetch_values_are_decodable_instructions() {
    let run = Kernel::Crc32.run(16, 4).unwrap();
    for ev in run.trace.fetches_only().iter() {
        assert!(
            lpmem::isa::Inst::decode(ev.value).is_some(),
            "undecodable fetch {:#010x} at {:#x}",
            ev.value,
            ev.addr
        );
    }
}

/// Energy reports merged across flows must equal the sum of their parts.
#[test]
fn energy_report_merge_is_additive() {
    let codec = DiffCodec::new();
    let a = run_compression_kernel(Kernel::Fir, 96, 1, PlatformKind::RiscLike, &codec).unwrap();
    let b = run_compression_kernel(Kernel::Dct8, 24, 1, PlatformKind::RiscLike, &codec).unwrap();
    let mut merged = a.baseline.clone();
    merged.merge(&b.baseline);
    let expect = a.baseline.total() + b.baseline.total();
    assert!((merged.total().as_pj() - expect.as_pj()).abs() < 1e-6);
}
