//! Golden-value regression suite for the design-space explorer: the
//! DSE-1 frontier on a fixed workload, space, and seed must reproduce the
//! exact JSONL stored in-tree.
//!
//! The explorer's contract is *byte* determinism — same `(axes, strategy,
//! budget, seed)` gives the same frontier dump at any worker count — so
//! this suite pins the bytes themselves. Any drift means an evaluator or
//! search change, which must be a conscious decision, recorded by
//! updating the constants below.
//!
//! To regenerate after an intentional change, run with
//! `LPMEM_GOLDEN_PRINT=1` (e.g. `LPMEM_GOLDEN_PRINT=1 cargo test --test
//! explore_golden -- --nocapture`) and paste the printed rows over
//! `GOLDEN`.

use lpmem::core::flows::VariantSpec;
use lpmem::prelude::*;

/// The pinned frontier: the small agreement space exhausted at the
/// harness seed on the scaled-down FIR workload, seeded with the sweep
/// grid's variant embeddings exactly as the `explore` binary does.
const GOLDEN: &[&str] = &[
    "{\"key\":\"b4-k2048-c4096x64x2-diff-xor4-l0512\",\"banks\":4,\"block\":2048,\"cache_bytes\":4096,\"cache_line\":64,\"cache_ways\":2,\"codec\":\"diff\",\"bus\":\"xor4\",\"l0\":512,\"energy_pj\":195689211.7070731,\"area_mm2\":3.3100706369278705,\"cycles\":4206}",
    "{\"key\":\"b4-k2048-c2048x16x2-diff-xor4-l0512\",\"banks\":4,\"block\":2048,\"cache_bytes\":2048,\"cache_line\":16,\"cache_ways\":2,\"codec\":\"diff\",\"bus\":\"xor4\",\"l0\":512,\"energy_pj\":195691224.4774187,\"area_mm2\":3.2352822502081953,\"cycles\":4226}",
    "{\"key\":\"b4-k2048-c2048x16x2-off-xor4-l0512\",\"banks\":4,\"block\":2048,\"cache_bytes\":2048,\"cache_line\":16,\"cache_ways\":2,\"codec\":\"off\",\"bus\":\"xor4\",\"l0\":512,\"energy_pj\":195701206.8774187,\"area_mm2\":3.221782250208195,\"cycles\":4266}",
    "{\"key\":\"b4-k2048-c4096x64x2-diff-raw-l0512\",\"banks\":4,\"block\":2048,\"cache_bytes\":4096,\"cache_line\":64,\"cache_ways\":2,\"codec\":\"diff\",\"bus\":\"raw\",\"l0\":512,\"energy_pj\":195709269.4169611,\"area_mm2\":3.3057506369278706,\"cycles\":4206}",
    "{\"key\":\"b4-k2048-c2048x16x2-diff-raw-l0512\",\"banks\":4,\"block\":2048,\"cache_bytes\":2048,\"cache_line\":16,\"cache_ways\":2,\"codec\":\"diff\",\"bus\":\"raw\",\"l0\":512,\"energy_pj\":195711282.18730667,\"area_mm2\":3.2309622502081954,\"cycles\":4226}",
    "{\"key\":\"b4-k2048-c2048x16x2-off-raw-l0512\",\"banks\":4,\"block\":2048,\"cache_bytes\":2048,\"cache_line\":16,\"cache_ways\":2,\"codec\":\"off\",\"bus\":\"raw\",\"l0\":512,\"energy_pj\":195721264.58730668,\"area_mm2\":3.2174622502081953,\"cycles\":4266}",
];

fn golden_frontier() -> Frontier {
    let space = DesignSpace::small();
    let workload = Workload {
        scale: 16,
        iterations: 8,
        ..Workload::default()
    };
    let evaluator = Evaluator::new(workload).expect("workload runs");
    let seeds: Vec<DesignPoint> = [VariantSpec::default(), VariantSpec::tight()]
        .iter()
        .map(DesignPoint::from_variant)
        .filter(|p| space.contains(p))
        .collect();
    let cfg = SearchConfig {
        budget: space.len(),
        workers: 2,
        seeds,
        ..Default::default()
    };
    Exhaustive
        .search(&space, &evaluator, &cfg)
        .expect("search runs")
        .frontier
}

#[test]
fn dse1_frontier_is_reproduced_byte_exactly() {
    let frontier = golden_frontier();
    if std::env::var_os("LPMEM_GOLDEN_PRINT").is_some() {
        for line in frontier.to_jsonl().lines() {
            println!("    {:?},", line);
        }
        return;
    }
    let jsonl = frontier.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(
        lines.len(),
        GOLDEN.len(),
        "frontier size drifted: {} pinned, {} produced",
        GOLDEN.len(),
        lines.len()
    );
    for (i, (got, want)) in lines.iter().zip(GOLDEN).enumerate() {
        assert_eq!(got, want, "frontier row {i} drifted");
    }
}
