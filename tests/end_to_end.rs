//! End-to-end reproduction checks: the headline *shapes* of all four
//! DATE 2003 Session 1B results must hold on small instances.

use lpmem::core::workloads::{composite_suite, scattered_suite};
use lpmem::prelude::*;

/// The fixed seed of the reproduction harness (`experiments::SEED`).
const SEED: u64 = 2003;

/// The T1 shape, per workload suite: clustering never hurts, partitioning
/// never loses to the monolith, and the average/maximum clustering
/// reductions are in the paper's order of magnitude (avg 25%, max 57%).
fn assert_t1_shape(suite: &str, workloads: Vec<(String, Trace)>) {
    let tech = Technology::tech180();
    let cfg = PartitioningConfig::default();
    let mut reductions = Vec::new();
    for (name, trace) in workloads {
        let out = run_partitioning(&name, &trace, &cfg, &tech).expect("flow");
        // Clustering must never hurt (it is rejected when unprofitable).
        assert!(out.clustered <= out.partitioned, "{suite}/{name}");
        // Partitioning itself must never lose to the monolith.
        assert!(out.partitioned <= out.monolithic, "{suite}/{name}");
        reductions.push(out.reduction_vs_partitioned());
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    let max = reductions.iter().cloned().fold(0.0, f64::max);
    assert!(
        avg > 0.10,
        "{suite}: average clustering reduction too small: {avg}"
    );
    assert!(
        max > 0.35,
        "{suite}: maximum clustering reduction too small: {max}"
    );
}

#[test]
fn t1_shape_holds_on_composite_suite() {
    assert_t1_shape("composite", composite_suite(SEED).expect("kernels verify"));
}

#[test]
fn t1_shape_holds_on_scattered_suite() {
    assert_t1_shape("scattered", scattered_suite(SEED));
}

#[test]
fn t2_shape_compression_saves_energy_and_vliw_beats_risc() {
    let codec = DiffCodec::new();
    let kernels = [(Kernel::Fir, 640u32), (Kernel::Dct8, 160)];
    let mut vliw_avg = 0.0;
    let mut risc_avg = 0.0;
    for (kernel, scale) in kernels {
        let vliw = run_compression_kernel(kernel, scale, SEED, PlatformKind::VliwLike, &codec)
            .expect("flow");
        let risc = run_compression_kernel(kernel, scale, SEED, PlatformKind::RiscLike, &codec)
            .expect("flow");
        assert!(
            vliw.energy_saving() > 0.05,
            "{}: vliw saving too small",
            kernel
        );
        assert!(
            risc.energy_saving() > 0.02,
            "{}: risc saving too small",
            kernel
        );
        vliw_avg += vliw.energy_saving();
        risc_avg += risc.energy_saving();
    }
    // Paper shape: the wide-line VLIW platform gains more than RISC.
    assert!(vliw_avg > risc_avg, "vliw {vliw_avg} <= risc {risc_avg}");
}

#[test]
fn t3_shape_functional_encoding_halves_transitions_and_beats_businvert() {
    let tech = Technology::tech180();
    for kernel in [Kernel::MatMul, Kernel::Histogram, Kernel::RleEncode] {
        let run = kernel.run(kernel.default_scale(), SEED).expect("kernel");
        let out = run_buscoding(kernel.name(), &run.trace, 4, &tech).expect("flow");
        // Paper: "up to half of the original transitions".
        assert!(
            out.reduction() > 0.40,
            "{}: reduction {}",
            kernel,
            out.reduction()
        );
        assert!(
            out.encoded_transitions < out.businvert_transitions,
            "{}: xor must beat bus-invert",
            kernel
        );
    }
}

#[test]
fn t4_shape_scheduler_beats_naive_and_cuts_reconfig_energy() {
    let tech = Technology::tech180();
    let platform = lpmem::core::flows::scheduling::default_platform(&tech);
    let mut savings = Vec::new();
    let mut reconfig = Vec::new();
    for seed in 0..6 {
        let app = dsp_pipeline_app(4, 32, seed).expect("builder");
        let out = run_scheduling("dsp", &app, &platform).expect("flow");
        assert!(out.greedy <= out.naive, "seed {seed}");
        assert!(out.greedy < out.external_only, "seed {seed}");
        savings.push(out.saving_vs_naive());
        reconfig.push(out.reconfig_saving());
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!(avg > 0.05, "average scheduling saving too small: {avg}");
    assert!(
        reconfig.iter().any(|&r| r > 0.3),
        "configuration caching never paid off: {reconfig:?}"
    );
}

#[test]
fn sys_shape_optimizations_compose() {
    let codec = DiffCodec::new();
    let combined =
        run_system(Kernel::Dct8, 96, SEED, PlatformKind::VliwLike, &codec, 4).expect("flow");
    let compression_only =
        run_compression_kernel(Kernel::Dct8, 96, SEED, PlatformKind::VliwLike, &codec)
            .expect("flow");
    // The combined study must save at least as much absolute energy as
    // compression alone (the ibus component only adds savings).
    let combined_saved = combined.baseline.total() - combined.optimized.total();
    let compression_saved = compression_only.baseline.total() - compression_only.compressed.total();
    assert!(combined_saved > compression_saved);
    assert!(combined.saving() > 0.0);
}
