//! Golden CMP regression suite: chip-multiprocessor scenarios on fixed
//! seeds must reproduce the exact numbers stored in-tree.
//!
//! The crate-level tests in `lpmem-cmp` and `lpmem-core` check *shapes*
//! (compression helps, dark banks appear under tight budgets, the 1-core
//! passthrough degenerates); this suite pins *values* across the public
//! harness — `FlowSpec::run_with_cmp` and the `--cmp` sweep axis — so any
//! drift in the interleaver, the NUCA mapping, the LLC codecs, or the
//! dark-silicon gating is a conscious, recorded decision.
//!
//! To regenerate after an intentional change, run with
//! `LPMEM_GOLDEN_PRINT=1` (e.g. `LPMEM_GOLDEN_PRINT=1 cargo test --test
//! cmp_golden -- --nocapture`) and paste the printed rows over `GOLDEN`.

use lpmem::core::flows::FaultSpec;
use lpmem::prelude::*;
use lpmem_bench::sweep::{run_sweep, SweepGrid};

/// The fixed seed of the reproduction harness (`experiments::SEED`).
const SEED: u64 = 2003;

/// One pinned CMP grid point: inputs plus the exact expected outputs.
struct Golden {
    kernel: Kernel,
    scale: u32,
    seed: u64,
    tech: TechNode,
    variant: &'static str,
    fault: &'static str,
    cmp: &'static str,
    events: u64,
    baseline_pj: f64,
    optimized_pj: f64,
    llc_lookups: u64,
    llc_hits: u64,
    llc_compressed: u64,
    offchip_beats: u64,
    dark_banks: u32,
    cmp_cycles: u64,
}

/// The headline quad scenario plus corners covering every LLC codec, a
/// fault campaign, a single-tech partition, and an 8-core chip.
const GOLDEN: &[Golden] = &[
    Golden {
        kernel: Kernel::Fir,
        scale: 48,
        seed: SEED,
        tech: TechNode::T180,
        variant: "default",
        fault: "off",
        cmp: "c4b8x32w4-zrun-t180+t90-p600",
        events: 71559,
        baseline_pj: 10084866.656,
        optimized_pj: 7414218.780592745,
        llc_lookups: 189,
        llc_hits: 80,
        llc_compressed: 57,
        offchip_beats: 2628,
        dark_banks: 2,
        cmp_cycles: 38909,
    },
    Golden {
        kernel: Kernel::Dct8,
        scale: 16,
        seed: 42,
        tech: TechNode::T90,
        variant: "tight",
        fault: "secded",
        cmp: "c4b8x32w4-zrun-t180+t90-p600",
        events: 21972,
        baseline_pj: 1580902.4500377006,
        optimized_pj: 1511854.9353459226,
        llc_lookups: 129,
        llc_hits: 35,
        llc_compressed: 41,
        offchip_beats: 1307,
        dark_banks: 5,
        cmp_cycles: 17494,
    },
    Golden {
        kernel: Kernel::Crc32,
        scale: 32,
        seed: SEED,
        tech: TechNode::T130,
        variant: "default",
        fault: "off",
        cmp: "c2b4x16w2-fpc-t130-p300",
        events: 9835,
        baseline_pj: 842868.8400000001,
        optimized_pj: 789180.9745279999,
        llc_lookups: 30,
        llc_hits: 2,
        llc_compressed: 6,
        offchip_beats: 460,
        dark_banks: 0,
        cmp_cycles: 7231,
    },
    Golden {
        kernel: Kernel::Histogram,
        scale: 24,
        seed: 7,
        tech: TechNode::T180,
        variant: "default",
        fault: "parity",
        cmp: "c8b8x64w4-diff-t180+t130+t90-p900",
        events: 320383,
        baseline_pj: 69385097.264,
        optimized_pj: 39693401.351296,
        llc_lookups: 864,
        llc_hits: 739,
        llc_compressed: 319,
        offchip_beats: 14448,
        dark_banks: 4,
        cmp_cycles: 190321,
    },
];

fn run_point(g: &Golden) -> FlowSummary {
    let variant = VariantSpec::parse(g.variant).expect("known variant");
    let fault = FaultSpec::parse(g.fault).expect("known fault spec");
    let cmp = CmpSpec::parse(g.cmp).expect("known cmp spec");
    FlowSpec::System
        .run_with_cmp(g.kernel, g.scale, g.seed, g.tech, &variant, &fault, &cmp)
        .unwrap_or_else(|e| panic!("{} failed: {e}", g.cmp))
}

#[test]
fn golden_cmp_values_are_reproduced_exactly() {
    if std::env::var_os("LPMEM_GOLDEN_PRINT").is_some() {
        for g in GOLDEN {
            let s = run_point(g);
            let r = s.cmp.as_ref().expect("CMP run carries a report");
            println!(
                "    Golden {{ kernel: Kernel::{:?}, scale: {}, seed: {}, \
                 tech: TechNode::{:?}, variant: {:?}, fault: {:?}, cmp: {:?}, \
                 events: {}, baseline_pj: {:?}, optimized_pj: {:?}, \
                 llc_lookups: {}, llc_hits: {}, llc_compressed: {}, \
                 offchip_beats: {}, dark_banks: {}, cmp_cycles: {} }},",
                g.kernel,
                g.scale,
                g.seed,
                g.tech,
                g.variant,
                g.fault,
                g.cmp,
                s.events,
                s.baseline.as_pj(),
                s.optimized.as_pj(),
                r.llc_lookups,
                r.llc_hits,
                r.llc_compressed_lines,
                r.offchip_beats,
                r.dark_banks,
                r.cycles,
            );
        }
        return;
    }
    for g in GOLDEN {
        let s = run_point(g);
        let r = s.cmp.as_ref().expect("CMP run carries a report");
        let label = format!("{}/{}/{}", g.cmp, g.kernel.name(), g.tech.name());
        assert_eq!(s.events, g.events, "{label}: events drifted");
        assert_eq!(
            s.baseline.as_pj(),
            g.baseline_pj,
            "{label}: baseline energy drifted"
        );
        assert_eq!(
            s.optimized.as_pj(),
            g.optimized_pj,
            "{label}: optimized energy drifted"
        );
        assert_eq!(r.llc_lookups, g.llc_lookups, "{label}: LLC lookups drifted");
        assert_eq!(r.llc_hits, g.llc_hits, "{label}: LLC hits drifted");
        assert_eq!(
            r.llc_compressed_lines, g.llc_compressed,
            "{label}: compressed-line count drifted"
        );
        assert_eq!(
            r.offchip_beats, g.offchip_beats,
            "{label}: off-chip beats drifted"
        );
        assert_eq!(r.dark_banks, g.dark_banks, "{label}: dark banks drifted");
        assert_eq!(r.cycles, g.cmp_cycles, "{label}: LLC cycles drifted");
    }
}

/// A 1-core chip with one uncompressed LLC bank, no technology axis, and
/// no power budget *is* the single-core system flow — same energies, same
/// event count, same fault-campaign outcome, through the public harness.
#[test]
fn one_core_passthrough_matches_the_single_core_system_flow() {
    let variant = VariantSpec::default();
    let passthrough = CmpSpec::parse("c1b1x32w4").expect("passthrough spec");
    for fault in ["off", "secded"] {
        let fault = FaultSpec::parse(fault).expect("known fault spec");
        let solo = FlowSpec::System
            .run_with_faults(Kernel::Fir, 48, SEED, TechNode::T90, &variant, &fault)
            .expect("solo system flow");
        let cmp = FlowSpec::System
            .run_with_cmp(
                Kernel::Fir,
                48,
                SEED,
                TechNode::T90,
                &variant,
                &fault,
                &passthrough,
            )
            .expect("1-core CMP flow");
        assert_eq!(solo.baseline, cmp.baseline);
        assert_eq!(solo.optimized, cmp.optimized);
        assert_eq!(solo.events, cmp.events);
        assert_eq!(solo.reliability, cmp.reliability);
    }
}

/// A small grid mixing disabled, headline, and custom CMP scenarios with
/// a fault axis: the sweep's JSONL report must be byte-identical at 1, 2,
/// and 8 workers.
fn cmp_grid() -> SweepGrid {
    let mut grid = SweepGrid::default_grid(true);
    grid.flows = vec![FlowSpec::System];
    grid.kernels = vec![(Kernel::Fir, 12)];
    grid.techs = vec![TechNode::T180, TechNode::T90];
    grid.variants = vec![VariantSpec::default()];
    grid.faults = vec![
        FaultSpec::off(),
        FaultSpec::parse("secded").expect("known fault spec"),
    ];
    grid.cmps = vec![
        lpmem::core::flows::CmpSpec::off(),
        CmpSpec::quad(),
        CmpSpec::parse("c2b4x16w2-fpc-t130-p300").expect("known cmp spec"),
    ];
    grid
}

#[test]
fn cmp_sweep_jsonl_is_byte_identical_at_any_worker_count() {
    let grid = cmp_grid();
    let one = run_sweep(&grid, 1).jsonl();
    let two = run_sweep(&grid, 2).jsonl();
    let eight = run_sweep(&grid, 8).jsonl();
    assert_eq!(one, two, "1 vs 2 workers drifted");
    assert_eq!(one, eight, "1 vs 8 workers drifted");
}

/// CMP counters appear in the JSONL only on scenario rows; disabled rows
/// keep the exact pre-CMP shape.
#[test]
fn cmp_fields_are_conditional_in_the_sweep_report() {
    let jsonl = run_sweep(&cmp_grid(), 2).jsonl();
    let (mut with, mut without) = (0, 0);
    for line in jsonl.lines() {
        if line.contains("\"cmp\":") {
            with += 1;
            assert!(line.contains("\"llc_lookups\":"), "scenario row: {line}");
            assert!(line.contains("\"cmp_cycles\":"), "scenario row: {line}");
        } else {
            without += 1;
            assert!(!line.contains("llc_"), "disabled row: {line}");
        }
    }
    // 2 techs × 2 faults × (2 scenarios + 1 disabled).
    assert_eq!(with, 8);
    assert_eq!(without, 4);
}
