//! Golden fleet report: the merged JSONL of a small fixed fleet is pinned
//! byte for byte.
//!
//! The fleet path streams every device through the online statistics and
//! merges integer shard aggregates, so the report is a pure function of
//! the spec — any byte of drift here means a generator, a streaming
//! statistic, the seed-derivation tree, or the JSON renderer changed,
//! which must be a conscious decision.
//!
//! To regenerate after an intentional change, run with
//! `LPMEM_GOLDEN_PRINT=1` (e.g. `LPMEM_GOLDEN_PRINT=1 cargo test --test
//! fleet_golden -- --nocapture`) and paste the printed lines over
//! `GOLDEN`.

use lpmem_bench::fleet::{run_fleet, FleetSpec};
use lpmem_core::WorkloadMix;

/// The fixed seed of the reproduction harness (`experiments::SEED`).
const SEED: u64 = 2003;

/// A fleet small enough to pin yet sharded enough (4 shards) to exercise
/// the merge path.
fn golden_spec() -> FleetSpec {
    let mut spec = FleetSpec::new(WorkloadMix::uniform());
    spec.devices = 64;
    spec.events_per_device = 64;
    spec.base_seed = SEED;
    spec.shard_devices = 16;
    spec.samples = 4;
    spec
}

/// The exact merged report bytes.
const GOLDEN: &str = r#"{"kind":"fleet","devices":64,"events_per_device":64,"events":4096,"mix":"uniform","seed":2003,"block_size":64,"spatial_window":64,"ws_window":64,"samples":4}
{"kind":"class","class":"hot-cold","devices":10,"events":640,"cold":595,"reuses":45,"dist_sum":689,"near_pairs":7,"pairs":630,"ws_windows":10,"ws_distinct_sum":595,"ws_max":62,"max_footprint":62,"mean_stack_distance":15.311111111111112,"spatial_locality":0.011111111111111112,"ws_mean":59.5,"dist_hist":"2,2,5,9,9,13,5,0,0,0,0,0,0,0,0,0,0,0"}
{"kind":"class","class":"strided","devices":17,"events":1088,"cold":480,"reuses":608,"dist_sum":0,"near_pairs":1071,"pairs":1071,"ws_windows":17,"ws_distinct_sum":480,"ws_max":64,"max_footprint":64,"mean_stack_distance":0,"spatial_locality":1,"ws_mean":28.235294117647058,"dist_hist":"608,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0"}
{"kind":"class","class":"phased","devices":14,"events":896,"cold":59,"reuses":837,"dist_sum":4,"near_pairs":877,"pairs":882,"ws_windows":14,"ws_distinct_sum":59,"ws_max":5,"max_footprint":5,"mean_stack_distance":0.0047789725209080045,"spatial_locality":0.9943310657596371,"ws_mean":4.214285714285714,"dist_hist":"835,0,2,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0"}
{"kind":"class","class":"chase","devices":9,"events":576,"cold":550,"reuses":26,"dist_sum":459,"near_pairs":1,"pairs":567,"ws_windows":9,"ws_distinct_sum":550,"ws_max":64,"max_footprint":64,"mean_stack_distance":17.653846153846153,"spatial_locality":0.001763668430335097,"ws_mean":61.111111111111114,"dist_hist":"1,2,3,4,3,8,5,0,0,0,0,0,0,0,0,0,0,0"}
{"kind":"class","class":"phase-scatter","devices":14,"events":896,"cold":730,"reuses":166,"dist_sum":3087,"near_pairs":13,"pairs":882,"ws_windows":14,"ws_distinct_sum":730,"ws_max":58,"max_footprint":58,"mean_stack_distance":18.596385542168676,"spatial_locality":0.01473922902494331,"ws_mean":52.142857142857146,"dist_hist":"9,10,8,16,37,48,38,0,0,0,0,0,0,0,0,0,0,0"}
{"kind":"sample","priority":85694755390316688,"device":52,"class":"strided","drift":9,"cold":16,"reuses":48,"dist_sum":0,"near_pairs":63,"ws_max":16,"profile":"0x10190,0x10100,0x10380,0x10080"}
{"kind":"sample","priority":460268872863269044,"device":38,"class":"phase-scatter","drift":8,"cold":52,"reuses":12,"dist_sum":255,"near_pairs":3,"ws_max":52,"profile":"0x47dc,0x19c,0x579c,0x55c0"}
{"kind":"sample","priority":597384210855788684,"device":1,"class":"strided","drift":8,"cold":64,"reuses":0,"dist_sum":0,"near_pairs":63,"ws_max":64,"profile":"0x10b00,0x10780,0x107c0,0x10500"}
{"kind":"sample","priority":1076429718696050452,"device":27,"class":"hot-cold","drift":5,"cold":59,"reuses":5,"dist_sum":97,"near_pairs":0,"ws_max":59,"profile":"0x26a0,0x18dfc,0x20cc,0x18a9c"}
"#;

#[test]
fn fleet_report_matches_golden_bytes() {
    let jsonl = run_fleet(&golden_spec(), 2)
        .expect("golden spec is valid")
        .jsonl();
    if std::env::var_os("LPMEM_GOLDEN_PRINT").is_some() {
        println!("--- paste between the GOLDEN quotes (escape as needed) ---");
        print!("{jsonl}");
        return;
    }
    assert_eq!(
        jsonl, GOLDEN,
        "fleet golden drift; regenerate with LPMEM_GOLDEN_PRINT=1"
    );
}
