//! Cross-crate property-based tests on randomly generated inputs.

use proptest::prelude::*;

use lpmem::cluster::{cluster_blocks, AddressMap, ClusterConfig, Objective};
use lpmem::prelude::*;

fn arb_profile() -> impl Strategy<Value = BlockProfile> {
    prop::collection::vec(0u64..5_000, 4..64)
        .prop_map(|counts| BlockProfile::from_counts(0, 1024, counts).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DP partitioner never loses to the monolith or to greedy, for any
    /// profile.
    #[test]
    fn optimal_partition_dominates(profile in arb_profile()) {
        let cost = PartitionCost::new(&Technology::tech180());
        let (_, opt) = optimal_partition(&profile, 6, &cost);
        let mono = cost.evaluate(&profile, &Partition::monolithic(profile.num_blocks()));
        let (_, greedy) = greedy_partition(&profile, 6, &cost);
        prop_assert!(opt.total().as_pj() <= mono.total().as_pj() + 1e-9);
        prop_assert!(opt.total().as_pj() <= greedy.total().as_pj() + 1e-9);
    }

    /// Clustering always yields a valid permutation that preserves total
    /// traffic, for both objectives.
    #[test]
    fn clustering_is_a_traffic_preserving_permutation(
        profile in arb_profile(),
        affinity in any::<bool>(),
    ) {
        let objective =
            if affinity { Objective::FrequencyAffinity } else { Objective::FrequencyOnly };
        let cfg = ClusterConfig { objective, ..Default::default() };
        let map = cluster_blocks(&profile, None, &cfg);
        let remapped = map.apply(&profile).unwrap();
        prop_assert_eq!(remapped.total_accesses(), profile.total_accesses());
        // Bijectivity: applying the inverse ordering restores the counts.
        let back = remapped.permuted(map.forward()).unwrap();
        prop_assert_eq!(back.counts(), profile.counts());
    }

    /// Clustering a frequency-sorted profile can never make the DP
    /// partitioner worse than the identity map does.
    #[test]
    fn clustering_never_hurts_dp_energy(profile in arb_profile()) {
        let cost = PartitionCost::new(&Technology::tech180());
        let (_, plain) = optimal_partition(&profile, 6, &cost);
        let cfg = ClusterConfig { objective: Objective::FrequencyOnly, ..Default::default() };
        let map = cluster_blocks(&profile, None, &cfg);
        let remapped = map.apply(&profile).unwrap();
        let (_, clustered) = optimal_partition(&remapped, 6, &cost);
        // Ignoring the relocation overhead, the sorted profile is always at
        // least as partitionable as the original.
        prop_assert!(clustered.total().as_pj() <= plain.total().as_pj() + 1e-9);
    }

    /// remap_addr is a bijection on the mapped range.
    #[test]
    fn remap_addr_is_bijective(perm_seed in 0u64..1000) {
        let n = 16usize;
        // Derive a permutation from the seed.
        let mut forward: Vec<usize> = (0..n).collect();
        let mut s = perm_seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            forward.swap(i, (s >> 33) as usize % (i + 1));
        }
        let map = AddressMap::new(forward, 0, 1024).unwrap();
        let mut seen = std::collections::HashSet::new();
        for block in 0..n as u64 {
            for off in [0u64, 4, 1020] {
                let out = map.remap_addr(block * 1024 + off);
                prop_assert!(out < (n as u64) * 1024);
                prop_assert!(seen.insert(out));
            }
        }
    }

    /// Any word sequence written through any cache geometry and flushed is
    /// durable in the backing.
    #[test]
    fn cache_writes_are_durable(
        writes in prop::collection::vec((0u64..4096, any::<u32>()), 1..64),
        size_kib in 0u32..3,
        line in prop::sample::select(vec![16u32, 32, 64]),
    ) {
        let cfg = CacheConfig::new(1 << (9 + size_kib), line, 2).unwrap();
        let mut cache = Cache::new(cfg);
        let mut mem = FlatMemory::new();
        let mut expect = std::collections::HashMap::new();
        for &(addr, value) in &writes {
            let addr = addr & !3; // word aligned
            cache.write_word(addr, value, &mut mem);
            expect.insert(addr, value);
        }
        cache.flush(&mut mem);
        for (&addr, &value) in &expect {
            prop_assert_eq!(mem.read_u32(addr), value, "addr {:#x}", addr);
        }
    }

    /// The trained bus transform is always decodable and never increases
    /// transitions, whatever the fetch stream.
    #[test]
    fn region_encoder_sound_on_random_streams(
        words in prop::collection::vec(any::<u32>(), 2..256),
        regions in 1usize..8,
    ) {
        let stream: Vec<(u64, u32)> =
            words.iter().enumerate().map(|(i, &w)| (4 * i as u64, w)).collect();
        let enc = RegionEncoder::train(&stream, regions);
        let report = enc.evaluate(&stream);
        prop_assert!(report.encoded_transitions <= report.raw_transitions);
        let encoded = enc.encode_stream(&stream);
        let addrs: Vec<u64> = stream.iter().map(|&(a, _)| a).collect();
        prop_assert_eq!(enc.decode_stream(&addrs, &encoded), words);
    }
}
