//! Cross-crate property-based tests on randomly generated inputs, driven
//! by the in-tree `lpmem-util` property harness (seeded, deterministic,
//! and hermetic — no external test dependencies).

use lpmem_util::{Props, Rng};

use lpmem::cluster::{cluster_blocks, AddressMap, ClusterConfig, Objective};
use lpmem::prelude::*;

/// 4–64 blocks with counts in `[0, 5000)` — the same input family the
/// original proptest strategy generated.
fn arb_profile(rng: &mut Rng) -> BlockProfile {
    let blocks = rng.gen_range(4..64usize);
    let counts: Vec<u64> = (0..blocks).map(|_| rng.gen_range(0..5_000u64)).collect();
    BlockProfile::from_counts(0, 1024, counts).unwrap()
}

/// The DP partitioner never loses to the monolith or to greedy, for any
/// profile.
#[test]
fn optimal_partition_dominates() {
    Props::new("DP partition dominates monolith and greedy")
        .cases(64)
        .run(|rng| {
            let profile = arb_profile(rng);
            let cost = PartitionCost::new(&Technology::tech180());
            let (_, opt) = optimal_partition(&profile, 6, &cost);
            let mono = cost.evaluate(&profile, &Partition::monolithic(profile.num_blocks()));
            let (_, greedy) = greedy_partition(&profile, 6, &cost);
            assert!(opt.total().as_pj() <= mono.total().as_pj() + 1e-9);
            assert!(opt.total().as_pj() <= greedy.total().as_pj() + 1e-9);
        });
}

/// Clustering always yields a valid permutation that preserves total
/// traffic, for both objectives.
#[test]
fn clustering_is_a_traffic_preserving_permutation() {
    Props::new("clustering is a traffic-preserving permutation")
        .cases(64)
        .run(|rng| {
            let profile = arb_profile(rng);
            let objective = if rng.gen_bool(0.5) {
                Objective::FrequencyAffinity
            } else {
                Objective::FrequencyOnly
            };
            let cfg = ClusterConfig {
                objective,
                ..Default::default()
            };
            let map = cluster_blocks(&profile, None, &cfg);
            let remapped = map.apply(&profile).unwrap();
            assert_eq!(remapped.total_accesses(), profile.total_accesses());
            // Bijectivity: applying the inverse ordering restores the counts.
            let back = remapped.permuted(map.forward()).unwrap();
            assert_eq!(back.counts(), profile.counts());
        });
}

/// Clustering a frequency-sorted profile can never make the DP
/// partitioner worse than the identity map does.
#[test]
fn clustering_never_hurts_dp_energy() {
    Props::new("clustering never hurts DP energy")
        .cases(64)
        .run(|rng| {
            let profile = arb_profile(rng);
            let cost = PartitionCost::new(&Technology::tech180());
            let (_, plain) = optimal_partition(&profile, 6, &cost);
            let cfg = ClusterConfig {
                objective: Objective::FrequencyOnly,
                ..Default::default()
            };
            let map = cluster_blocks(&profile, None, &cfg);
            let remapped = map.apply(&profile).unwrap();
            let (_, clustered) = optimal_partition(&remapped, 6, &cost);
            // Ignoring the relocation overhead, the sorted profile is always at
            // least as partitionable as the original.
            assert!(clustered.total().as_pj() <= plain.total().as_pj() + 1e-9);
        });
}

/// remap_addr is a bijection on the mapped range.
#[test]
fn remap_addr_is_bijective() {
    Props::new("remap_addr is a bijection")
        .cases(64)
        .run(|rng| {
            let n = 16usize;
            // Derive a random permutation of the block indices.
            let mut forward: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut forward);
            let map = AddressMap::new(forward, 0, 1024).unwrap();
            let mut seen = std::collections::HashSet::new();
            for block in 0..n as u64 {
                for off in [0u64, 4, 1020] {
                    let out = map.remap_addr(block * 1024 + off);
                    assert!(out < (n as u64) * 1024);
                    assert!(seen.insert(out));
                }
            }
        });
}

/// Any word sequence written through any cache geometry and flushed is
/// durable in the backing.
#[test]
fn cache_writes_are_durable() {
    Props::new("cache writes are durable after flush")
        .cases(64)
        .run(|rng| {
            let writes: Vec<(u64, u32)> = (0..rng.gen_range(1..64usize))
                .map(|_| (rng.gen_range(0..4096u64), rng.next_u32()))
                .collect();
            let size_kib = rng.gen_range(0..3u32);
            let line = *rng.choose(&[16u32, 32, 64]).expect("non-empty");
            let cfg = CacheConfig::new(1 << (9 + size_kib), line, 2).unwrap();
            let mut cache = Cache::new(cfg);
            let mut mem = FlatMemory::new();
            let mut expect = std::collections::HashMap::new();
            for &(addr, value) in &writes {
                let addr = addr & !3; // word aligned
                cache.write_word(addr, value, &mut mem);
                expect.insert(addr, value);
            }
            cache.flush(&mut mem);
            for (&addr, &value) in &expect {
                assert_eq!(mem.read_u32(addr), value, "addr {addr:#x}");
            }
        });
}

/// The trained bus transform is always decodable and never increases
/// transitions, whatever the fetch stream.
#[test]
fn region_encoder_sound_on_random_streams() {
    Props::new("region encoder is sound on random streams")
        .cases(64)
        .run(|rng| {
            let words: Vec<u32> = (0..rng.gen_range(2..256usize))
                .map(|_| rng.next_u32())
                .collect();
            let regions = rng.gen_range(1..8usize);
            let stream: Vec<(u64, u32)> = words
                .iter()
                .enumerate()
                .map(|(i, &w)| (4 * i as u64, w))
                .collect();
            let enc = RegionEncoder::train(&stream, regions);
            let report = enc.evaluate(&stream);
            assert!(report.encoded_transitions <= report.raw_transitions);
            let encoded = enc.encode_stream(&stream);
            let addrs: Vec<u64> = stream.iter().map(|&(a, _)| a).collect();
            assert_eq!(enc.decode_stream(&addrs, &encoded), words);
        });
}

/// The Pareto archive is sound for any insertion set and order: members
/// never dominate one another, and every rejected or evicted point is
/// covered (dominated-or-equalled) by some surviving member.
#[test]
fn frontier_members_are_mutually_non_dominated() {
    use lpmem::explore::{Evaluation, Objectives};

    Props::new("Pareto archive is sound").cases(64).run(|rng| {
        let space = DesignSpace::full();
        let n = rng.gen_range(4..64usize);
        // Distinct space indices give distinct keys; coarse objective
        // grids make duplicate and dominated vectors likely.
        let mut indices: Vec<usize> = (0..space.len()).collect();
        rng.shuffle(&mut indices);
        let evals: Vec<Evaluation> = indices[..n]
            .iter()
            .map(|&i| Evaluation {
                point: space.point_at(i),
                objectives: Objectives {
                    energy_pj: rng.gen_range(0..8u32) as f64,
                    area_mm2: rng.gen_range(0..8u32) as f64,
                    cycles: rng.gen_range(0..8u32) as u64,
                    silent: 0,
                },
                area: AreaReport::new(),
                reliability: None,
                cmp: None,
            })
            .collect();
        let mut frontier = Frontier::new();
        for e in &evals {
            frontier.insert(e.clone());
        }
        assert!(!frontier.is_empty());
        for a in frontier.points() {
            for b in frontier.points() {
                assert!(
                    !a.objectives.dominates(&b.objectives),
                    "frontier member dominated"
                );
            }
        }
        for e in &evals {
            let covered = frontier
                .points()
                .iter()
                .any(|p| p.objectives.dominates(&e.objectives) || p.objectives == e.objectives);
            assert!(
                covered,
                "inserted point escaped the archive: {:?}",
                e.objectives
            );
        }
    });
}

/// The fleet's merged bottom-k priority sample equals the global bottom-k
/// under any re-sharding, and the JSONL report bytes do not move — the
/// guarantee the module docs claim, including the conditional
/// fault-campaign fields. Each shard keeps a full k candidates, so the
/// merge can always reconstruct the fleet-wide selection.
#[test]
fn fleet_bottom_k_sample_is_resharding_invariant() {
    use lpmem::core::flows::{FaultSpec, Protection};
    use lpmem_bench::fleet::{simulate_device, simulate_shard, FleetReport, FleetSpec};

    Props::new("fleet bottom-k sample survives re-sharding")
        .cases(12)
        .run(|rng| {
            let mut spec = FleetSpec::new(WorkloadMix::uniform());
            spec.devices = rng.gen_range(20..120u64);
            spec.events_per_device = 32;
            spec.base_seed = rng.gen_range(0..1_000_000u64);
            spec.samples = rng.gen_range(1..8usize);
            // Half the cases run a fault campaign, so the conditional
            // JSONL fields go through the same invariance check.
            if rng.gen_range(0..2u32) == 1 {
                spec.fault = FaultSpec {
                    rate_scale: FaultSpec::DEFAULT_ACCEL.saturating_mul(10_000),
                    protection: Protection::Secded,
                };
            }

            // The global bottom-k, selected with no sharding at all.
            let mut keys: Vec<(u64, u64)> = (0..spec.devices)
                .map(|d| {
                    let stats = simulate_device(&spec, d);
                    (stats.priority, stats.device)
                })
                .collect();
            keys.sort_unstable();
            keys.truncate(spec.samples);

            let mut reference: Option<String> = None;
            for shard_devices in [7, 16, 33, spec.devices] {
                let mut sharded = spec.clone();
                sharded.shard_devices = shard_devices;
                let shards: Vec<_> = (0..sharded.num_shards())
                    .map(|s| simulate_shard(&sharded, s))
                    .collect();
                let report = FleetReport::from_shards(sharded, shards);
                let got: Vec<(u64, u64)> = report
                    .samples
                    .iter()
                    .map(|s| (s.priority, s.device))
                    .collect();
                assert_eq!(got, keys, "shard size {shard_devices}");
                let jsonl = report.jsonl();
                match &reference {
                    None => reference = Some(jsonl),
                    Some(r) => assert_eq!(*r, jsonl, "shard size {shard_devices}"),
                }
            }
        });
}
