//! Golden-value regression suite: every flow run on fixed seeds must
//! reproduce the exact numbers stored in-tree.
//!
//! The end-to-end suite checks *shapes* (savings exist, orderings hold);
//! this suite pins *values*. All flows are pure integer/f64 arithmetic on
//! seeded PRNG streams, and IEEE 754 arithmetic is deterministic, so any
//! drift here means an algorithm changed — which must be a conscious
//! decision, recorded by updating the constants below.
//!
//! To regenerate after an intentional change, run with
//! `LPMEM_GOLDEN_PRINT=1` (e.g. `LPMEM_GOLDEN_PRINT=1 cargo test --test
//! golden -- --nocapture`) and paste the printed rows over `GOLDEN`.

use lpmem::prelude::*;

/// The fixed seed of the reproduction harness (`experiments::SEED`).
const SEED: u64 = 2003;

/// One pinned grid point: inputs plus the exact expected outputs.
struct Golden {
    flow: FlowSpec,
    kernel: Kernel,
    scale: u32,
    seed: u64,
    tech: TechNode,
    variant: &'static str,
    events: u64,
    baseline_pj: f64,
    optimized_pj: f64,
}

/// Every flow at the harness seed on the default variant, plus a second
/// technology/variant corner for the two cache-platform flows.
const GOLDEN: &[Golden] = &[
    Golden {
        flow: FlowSpec::Partitioning,
        kernel: Kernel::Fir,
        scale: 48,
        seed: SEED,
        tech: TechNode::T180,
        variant: "default",
        events: 1584,
        baseline_pj: 128236.77697562754,
        optimized_pj: 26694.919036778538,
    },
    Golden {
        flow: FlowSpec::Compression,
        kernel: Kernel::Fir,
        scale: 48,
        seed: SEED,
        tech: TechNode::T180,
        variant: "default",
        events: 3,
        baseline_pj: 473784.32,
        optimized_pj: 428837.12,
    },
    Golden {
        flow: FlowSpec::BusCoding,
        kernel: Kernel::Fir,
        scale: 48,
        seed: SEED,
        tech: TechNode::T180,
        variant: "default",
        events: 8794,
        baseline_pj: 110171.66400000002,
        optimized_pj: 49421.66400000001,
    },
    Golden {
        flow: FlowSpec::Scheduling,
        kernel: Kernel::Fir,
        scale: 48,
        seed: SEED,
        tech: TechNode::T180,
        variant: "default",
        events: 128,
        baseline_pj: 998306091.5199997,
        optimized_pj: 773675918.0800002,
    },
    Golden {
        flow: FlowSpec::System,
        kernel: Kernel::Fir,
        scale: 48,
        seed: SEED,
        tech: TechNode::T180,
        variant: "default",
        events: 8794,
        baseline_pj: 583955.984,
        optimized_pj: 478897.157312,
    },
    Golden {
        flow: FlowSpec::Partitioning,
        kernel: Kernel::MatMul,
        scale: 12,
        seed: SEED,
        tech: TechNode::T130,
        variant: "tight",
        events: 3600,
        baseline_pj: 155440.043095172,
        optimized_pj: 26387.136000000002,
    },
    Golden {
        flow: FlowSpec::Compression,
        kernel: Kernel::Dct8,
        scale: 16,
        seed: 42,
        tech: TechNode::T130,
        variant: "tight",
        events: 38,
        baseline_pj: 991163.0468040735,
        optimized_pj: 885666.2468040735,
    },
    Golden {
        flow: FlowSpec::BusCoding,
        kernel: Kernel::Crc32,
        scale: 32,
        seed: SEED,
        tech: TechNode::T90,
        variant: "default",
        events: 5644,
        baseline_pj: 15385.75,
        optimized_pj: 6408.5,
    },
    Golden {
        flow: FlowSpec::Scheduling,
        kernel: Kernel::Fir,
        scale: 48,
        seed: 7,
        tech: TechNode::T90,
        variant: "tight",
        events: 128,
        baseline_pj: 560781900.8,
        optimized_pj: 455388505.8746985,
    },
    Golden {
        flow: FlowSpec::System,
        kernel: Kernel::Histogram,
        scale: 24,
        seed: 7,
        tech: TechNode::T90,
        variant: "tight",
        events: 3463,
        baseline_pj: 613470.324001421,
        optimized_pj: 485399.926001421,
    },
];

fn run_point(g: &Golden) -> FlowSummary {
    let variant = VariantSpec::parse(g.variant).expect("known variant");
    g.flow
        .run(g.kernel, g.scale, g.seed, g.tech, &variant)
        .unwrap_or_else(|e| panic!("{} failed: {e}", g.flow))
}

#[test]
fn golden_values_are_reproduced_exactly() {
    if std::env::var_os("LPMEM_GOLDEN_PRINT").is_some() {
        for g in GOLDEN {
            let s = run_point(g);
            println!(
                "    Golden {{ flow: FlowSpec::{:?}, kernel: Kernel::{:?}, scale: {}, \
                 seed: {}, tech: TechNode::{:?}, variant: {:?}, events: {}, \
                 baseline_pj: {:?}, optimized_pj: {:?} }},",
                g.flow,
                g.kernel,
                g.scale,
                g.seed,
                g.tech,
                g.variant,
                s.events,
                s.baseline.as_pj(),
                s.optimized.as_pj(),
            );
        }
        return;
    }
    for g in GOLDEN {
        let s = run_point(g);
        let label = format!(
            "{}/{}/{}/{}",
            g.flow,
            g.kernel.name(),
            g.tech.name(),
            g.variant
        );
        assert_eq!(s.events, g.events, "{label}: events drifted");
        assert_eq!(
            s.baseline.as_pj(),
            g.baseline_pj,
            "{label}: baseline energy drifted"
        );
        assert_eq!(
            s.optimized.as_pj(),
            g.optimized_pj,
            "{label}: optimized energy drifted"
        );
    }
}
