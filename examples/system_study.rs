//! The capstone study: how much of an embedded SoC's memory-system energy
//! do the session's techniques recover *together*? Applies instruction-bus
//! encoding (1B.3) and write-back compression (1B.2) to the same platform
//! and prints the combined breakdown.
//!
//! ```sh
//! cargo run --release --example system_study
//! ```

use lpmem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let codec = DiffCodec::new();
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>9}",
        "kernel", "baseline", "optimized", "ibus", "combined"
    );
    for (kernel, scale) in [
        (Kernel::Dct8, 160u32),
        (Kernel::Conv2d, 48),
        (Kernel::Fir, 640),
        (Kernel::RleEncode, 320),
    ] {
        let out = run_system(kernel, scale, 7, PlatformKind::VliwLike, &codec, 4)?;
        println!(
            "{:<10} {:>12} {:>12} {:>8.1}% {:>8.1}%",
            out.name,
            out.baseline.total().to_string(),
            out.optimized.total().to_string(),
            100.0 * out.ibus_saving(),
            100.0 * out.saving(),
        );
    }

    // Full breakdown for one kernel.
    let out = run_system(Kernel::Dct8, 160, 7, PlatformKind::VliwLike, &codec, 4)?;
    println!("\ndct8 baseline:\n{}", out.baseline);
    println!("\ndct8 optimized:\n{}", out.optimized);
    Ok(())
}
