//! The 1B.2 study: write-back compression of a DCT kernel on both platform
//! presets, across all three codecs, with full energy breakdowns.
//!
//! ```sh
//! cargo run --example compression_study
//! ```

use lpmem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let codecs: [&dyn LineCodec; 3] = [&DiffCodec::new(), &ZeroRunCodec::new(), &FpcCodec::new()];

    for platform in [PlatformKind::VliwLike, PlatformKind::RiscLike] {
        println!("== platform: {} ==", platform.name());
        for codec in codecs {
            let out = run_compression_kernel(Kernel::Dct8, 160, 9, platform, codec)?;
            println!(
                "codec {:>4}: {}/{} lines compressed, beats {} -> {}, \
                 energy {} -> {} ({:+.1}%)",
                out.codec,
                out.compressed_lines,
                out.lines,
                out.raw_beats,
                out.actual_beats,
                out.baseline.total(),
                out.compressed.total(),
                100.0 * out.energy_saving()
            );
        }
        // Detailed breakdown for the differential codec.
        let out = run_compression_kernel(Kernel::Dct8, 160, 9, platform, &DiffCodec::new())?;
        println!("baseline breakdown:\n{}", out.baseline);
        println!("compressed breakdown:\n{}", out.compressed);
        println!();
    }
    Ok(())
}
