//! The 1B.1 study in detail: build a composite embedded application,
//! inspect its scattered profile, cluster it, and compare the synthesized
//! bank architectures bank by bank.
//!
//! ```sh
//! cargo run --example partitioned_memory
//! ```

use lpmem::core::workloads::composite_app;
use lpmem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-phase application (filter -> transform -> entropy-code) whose
    // data objects are laid out in linker order — hot tables scattered
    // between cold buffers.
    let trace = composite_app(
        &[
            (Kernel::Fir, 96),
            (Kernel::Dct8, 24),
            (Kernel::RleEncode, 96),
        ],
        7,
    )?;
    let data = trace.data_only();
    let profile = BlockProfile::from_trace(&data, 2048)?;
    println!(
        "profile: {} blocks, {} accesses, scatter {:.2}, entropy {:.2} bits",
        profile.num_blocks(),
        profile.total_accesses(),
        profile.scatter(),
        profile.entropy_bits()
    );

    let tech = Technology::tech180();
    let cost = PartitionCost::new(&tech);

    // Plain optimal partitioning.
    let (plain, plain_eval) = optimal_partition(&profile, 8, &cost);
    println!("\nwithout clustering ({} banks):", plain.num_banks());
    for bank in &plain_eval.banks {
        println!(
            "  blocks {:>3}..{:<3}  {:>6} KiB  {:>9} accesses  {}",
            bank.blocks.start,
            bank.blocks.end,
            bank.bytes / 1024,
            bank.accesses,
            bank.energy
        );
    }
    println!("  total {}", plain_eval.total());

    // Cluster, then partition the remapped profile.
    let map = cluster_blocks(&profile, Some(&data), &ClusterConfig::default());
    let remapped = map.apply(&profile)?;
    let (clustered, clustered_eval) = optimal_partition(&remapped, 8, &cost);
    let overhead = map.lookup_energy(profile.total_accesses(), &tech);
    println!(
        "\nwith clustering ({} banks, relocation table {} bits, lookup overhead {}):",
        clustered.num_banks(),
        map.table_bits(),
        overhead
    );
    for bank in &clustered_eval.banks {
        println!(
            "  blocks {:>3}..{:<3}  {:>6} KiB  {:>9} accesses  {}",
            bank.blocks.start,
            bank.blocks.end,
            bank.bytes / 1024,
            bank.accesses,
            bank.energy
        );
    }
    let total = clustered_eval.total() + overhead;
    println!("  total {} (incl. relocation)", total);
    println!(
        "\nclustering saves {:.1}% vs plain partitioning",
        100.0 * total.saving_vs(plain_eval.total())
    );
    Ok(())
}
