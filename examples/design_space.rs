//! Multi-objective design-space exploration: exhaust a small cross-flow
//! configuration space and print its Pareto frontier over
//! (energy, area, cycles).
//!
//! ```text
//! cargo run --example design_space
//! ```

use lpmem::prelude::*;

fn main() -> Result<(), FlowError> {
    // The 32-point agreement space: two bank budgets, two cache
    // geometries, codec on/off, bus encoding on/off, two L0 capacities.
    let space = DesignSpace::small();
    println!("exploring {} points exhaustively", space.len());

    let workload = Workload {
        scale: 16,
        iterations: 8,
        ..Workload::default()
    };
    let evaluator = Evaluator::new(workload)?;
    let cfg = SearchConfig {
        budget: space.len(),
        ..Default::default()
    };
    let out = Exhaustive.search(&space, &evaluator, &cfg)?;

    println!(
        "{} evaluated, {} Pareto-optimal:",
        out.evaluated,
        out.frontier.len()
    );
    println!(
        "{:<42} {:>14} {:>10} {:>10}",
        "key", "energy_pj", "area_mm2", "cycles"
    );
    for p in out.frontier.points() {
        println!(
            "{:<42} {:>14.1} {:>10.4} {:>10}",
            p.point.key(),
            p.objectives.energy_pj,
            p.objectives.area_mm2,
            p.objectives.cycles
        );
    }

    // The frontier invariant: no member dominates another.
    for a in out.frontier.points() {
        assert!(!out.frontier.dominates(&a.objectives));
    }

    // An evolutionary search with the same budget finds the same frontier
    // on a space this small — the DSE-2 agreement property.
    let evolved = Evolutionary::default().search(&space, &evaluator, &cfg)?;
    assert_eq!(evolved.frontier.to_jsonl(), out.frontier.to_jsonl());
    println!("evolutionary search recovered the frontier exactly");
    Ok(())
}
