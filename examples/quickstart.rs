//! Quickstart: run a verified TinyRISC kernel, profile its data traffic,
//! and synthesize an energy-optimal partitioned memory with address
//! clustering.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lpmem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Run an embedded kernel on the TinyRISC simulator. The run is
    //    verified against a Rust reference implementation before the trace
    //    is returned.
    let run = Kernel::Histogram.run(64, 42)?;
    println!(
        "{}: {} instructions, {} memory events",
        run.kernel,
        run.steps,
        run.trace.len()
    );

    // 2. Inspect the locality structure the optimizations exploit.
    let locality = LocalityReport::from_trace(&run.trace.data_only(), 64)?;
    println!(
        "data locality: {:.0}% of consecutive accesses within 64 B, footprint {} blocks",
        100.0 * locality.spatial_locality,
        locality.footprint_blocks
    );

    // 3. Optimize the data memory: monolithic vs partitioned vs
    //    partitioned-with-clustering (the DATE 2003 1B.1 flow).
    let outcome = run_partitioning(
        "histogram",
        &run.trace,
        &PartitioningConfig::default(),
        &Technology::tech180(),
    )?;
    println!("monolithic   : {}", outcome.monolithic);
    println!(
        "partitioned  : {}  ({} saved)",
        outcome.partitioned,
        format_pct(outcome.partitioning_gain())
    );
    println!(
        "clustered    : {}  ({} vs partitioned, clustering {})",
        outcome.clustered,
        format_pct(outcome.reduction_vs_partitioned()),
        if outcome.clustering_adopted {
            "adopted"
        } else {
            "not needed"
        }
    );
    Ok(())
}

fn format_pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}
