//! The 1B.3 study on a hand-written program: assemble TinyRISC source,
//! execute it, train the per-region XOR encoder on its fetch stream, and
//! verify the decoder recovers every instruction.
//!
//! ```sh
//! cargo run --example bus_encoding
//! ```

use lpmem::prelude::*;

const SOURCE: &str = r#"
    .data 0x4000
vec:    .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
    .text
        la   r10, vec
        li   r13, 16
        li   r1, 0          # index
        li   r2, 0          # sum
        li   r3, 0          # max
loop:   slli r4, r1, 2
        add  r4, r4, r10
        lw   r5, (r4)
        add  r2, r2, r5
        bge  r3, r5, skip
        mv   r3, r5
skip:   addi r1, r1, 1
        blt  r1, r13, loop
        sw   r2, 0x100(r0)
        sw   r3, 0x104(r0)
        halt
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(SOURCE)?;
    let mut machine = Machine::new(&program);
    let result = machine.run(100_000)?;
    println!(
        "program ran {} instructions; sum = {}, max = {}",
        result.steps,
        machine.mem().read_u32(0x100),
        machine.mem().read_u32(0x104)
    );

    // The fetch stream: (address, instruction word) in execution order.
    let stream: Vec<(u64, u32)> = result
        .trace
        .fetches_only()
        .iter()
        .map(|e| (e.addr, e.value))
        .collect();

    let tech = Technology::tech180();
    let bus = BusModel::onchip(&tech, 32);
    for regions in [1, 2, 4] {
        let encoder = RegionEncoder::train(&stream, regions);
        let report = encoder.evaluate(&stream);
        println!(
            "{} region(s): {} -> {} transitions ({:.1}% less, {} XOR gates), \
             bus energy {} -> {}",
            regions,
            report.raw_transitions,
            report.encoded_transitions,
            100.0 * report.reduction(),
            report.gates,
            bus.energy_of(report.raw_transitions),
            bus.energy_of(report.encoded_transitions),
        );
    }

    // The decoder on the fetch path is lossless.
    let encoder = RegionEncoder::train(&stream, 4);
    let encoded = encoder.encode_stream(&stream);
    let addrs: Vec<u64> = stream.iter().map(|&(a, _)| a).collect();
    let decoded = encoder.decode_stream(&addrs, &encoded);
    let original: Vec<u32> = stream.iter().map(|&(_, w)| w).collect();
    assert_eq!(decoded, original, "decoder must recover every instruction");
    println!("decoder verified on {} fetches", stream.len());

    // Compare with the classic bus-invert baseline.
    println!(
        "bus-invert baseline: {} transitions",
        BusInvert::transitions(&stream)
    );
    Ok(())
}
