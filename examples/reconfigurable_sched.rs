//! The 1B.4 study: schedule the data of a hand-built multi-context
//! video-pipeline application onto a two-level on-chip memory, with
//! configuration caching across frames.
//!
//! ```sh
//! cargo run --example reconfigurable_sched
//! ```

use lpmem::prelude::*;
use lpmem::sched::{external_only_schedule, Level};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-context pipeline processing 30 frames: motion estimation,
    // DCT+quantization, entropy coding. Array 0/1 are ping-pong frame
    // buffers, 2 is a hot search window, 3/4 are small coefficient tables.
    let app = AppSpec::with_iterations(
        vec![
            ("frame_a", 8 << 10),
            ("frame_b", 8 << 10),
            ("search_win", 768),
            ("quant_tbl", 256),
            ("huff_tbl", 512),
        ],
        vec![
            // motion estimation: reads both frames, hammers the window
            ContextSpec::new(256, vec![(0, 6_000, 0), (1, 4_000, 0), (2, 30_000, 8_000)]),
            // dct + quantization
            ContextSpec::new(192, vec![(0, 4_000, 4_000), (3, 12_000, 0)]),
            // entropy coding
            ContextSpec::new(128, vec![(0, 5_000, 0), (4, 15_000, 0), (1, 0, 2_000)]),
        ],
        30,
    )?;

    let tech = Technology::tech180();
    let platform = SchedPlatform::new(&tech, 1 << 10, 16 << 10);

    let schedules = [
        ("external-only", external_only_schedule(&app)),
        ("naive all-L1", naive_schedule(&app, &platform)),
        ("greedy", greedy_schedule(&app, &platform)),
    ];
    let mut baseline = None;
    for (name, sched) in &schedules {
        let report = platform.evaluate(&app, sched)?;
        let total = report.total();
        let saving = baseline
            .map(|b| format!("  ({:.1}% vs naive)", 100.0 * total.saving_vs(b)))
            .unwrap_or_default();
        println!("-- {name}{saving}\n{report}\n");
        if *name == "naive all-L1" {
            baseline = Some(total);
        }
    }

    // Show the greedy placement decisions.
    let greedy = greedy_schedule(&app, &platform);
    println!("greedy placement (per context):");
    for (ci, row) in greedy.placement.iter().enumerate() {
        let placed: Vec<String> = row
            .iter()
            .enumerate()
            .filter(|(_, l)| **l != Level::External)
            .map(|(ai, l)| format!("{}@{:?}", app.array_name(ai), l))
            .collect();
        let cached = if greedy.cache_config[ci] {
            "  [config resident in L1]"
        } else {
            ""
        };
        println!("  context {ci}: {}{}", placed.join(", "), cached);
    }
    Ok(())
}
